#include "support/check.h"
#include "support/string_util.h"
#include "tensor/ops.h"

namespace ramiel {

// Direct convolution. The output-channel x batch loop is the parallel axis:
// each (n, k) pair is independent, which gives conv2d the intra-op
// parallelism profile the paper leans on for Table V.
Tensor conv2d(const Tensor& input, const Tensor& weight,
              const std::optional<Tensor>& bias, const Conv2dParams& p,
              const OpContext& ctx) {
  const Shape& is = input.shape();
  const Shape& ws = weight.shape();
  RAMIEL_CHECK(is.rank() == 4, str_cat("conv2d input must be NCHW, got ",
                                       is.to_string()));
  RAMIEL_CHECK(ws.rank() == 4, str_cat("conv2d weight must be KCRS, got ",
                                       ws.to_string()));
  const std::int64_t N = is.dim(0), C = is.dim(1), H = is.dim(2), W = is.dim(3);
  const std::int64_t K = ws.dim(0), Cg = ws.dim(1), R = ws.dim(2), S = ws.dim(3);
  RAMIEL_CHECK(p.groups >= 1 && C % p.groups == 0 && K % p.groups == 0,
               "conv2d group count must divide channels");
  RAMIEL_CHECK(Cg == C / p.groups,
               str_cat("conv2d weight channel dim ", Cg, " != C/groups = ",
                       C / p.groups));
  if (bias) {
    RAMIEL_CHECK(bias->shape().rank() == 1 && bias->shape().dim(0) == K,
                 "conv2d bias must be [K]");
  }
  const std::int64_t OH =
      (H + 2 * p.pad_h - p.dilation_h * (R - 1) - 1) / p.stride_h + 1;
  const std::int64_t OW =
      (W + 2 * p.pad_w - p.dilation_w * (S - 1) - 1) / p.stride_w + 1;
  RAMIEL_CHECK(OH > 0 && OW > 0, "conv2d output would be empty");

  Tensor out(Shape{N, K, OH, OW});
  auto in = input.data();
  auto wt = weight.data();
  auto dst = out.mutable_data();
  const float* bptr = bias ? bias->data().data() : nullptr;
  const std::int64_t kper_group = K / p.groups;

  dispatch_parallel_for(ctx, N * K, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t nk = lo; nk < hi; ++nk) {
      const std::int64_t n = nk / K;
      const std::int64_t k = nk % K;
      const std::int64_t g = k / kper_group;
      const std::int64_t c0 = g * Cg;
      for (std::int64_t oh = 0; oh < OH; ++oh) {
        for (std::int64_t ow = 0; ow < OW; ++ow) {
          float acc = bptr ? bptr[k] : 0.0f;
          for (std::int64_t c = 0; c < Cg; ++c) {
            for (std::int64_t r = 0; r < R; ++r) {
              const std::int64_t ih = oh * p.stride_h - p.pad_h + r * p.dilation_h;
              if (ih < 0 || ih >= H) continue;
              for (std::int64_t s = 0; s < S; ++s) {
                const std::int64_t iw =
                    ow * p.stride_w - p.pad_w + s * p.dilation_w;
                if (iw < 0 || iw >= W) continue;
                acc += in[static_cast<std::size_t>(
                           ((n * C + c0 + c) * H + ih) * W + iw)] *
                       wt[static_cast<std::size_t>(((k * Cg + c) * R + r) * S + s)];
              }
            }
          }
          dst[static_cast<std::size_t>(((n * K + k) * OH + oh) * OW + ow)] = acc;
        }
      }
    }
  });
  return out;
}

Tensor resize_nearest(const Tensor& input, int scale, const OpContext& ctx) {
  const Shape& is = input.shape();
  RAMIEL_CHECK(is.rank() == 4, "resize_nearest input must be NCHW");
  RAMIEL_CHECK(scale >= 1, "resize scale must be >= 1");
  const std::int64_t N = is.dim(0), C = is.dim(1), H = is.dim(2), W = is.dim(3);
  const std::int64_t OH = H * scale, OW = W * scale;
  Tensor out(Shape{N, C, OH, OW});
  auto in = input.data();
  auto dst = out.mutable_data();
  dispatch_parallel_for(ctx, N * C, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t nc = lo; nc < hi; ++nc) {
      const float* src = in.data() + nc * H * W;
      float* d = dst.data() + nc * OH * OW;
      for (std::int64_t oh = 0; oh < OH; ++oh) {
        for (std::int64_t ow = 0; ow < OW; ++ow) {
          d[oh * OW + ow] = src[(oh / scale) * W + (ow / scale)];
        }
      }
    }
  });
  return out;
}

}  // namespace ramiel
