#include "tensor/tensor.h"

#include <cmath>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

namespace {
thread_local AllocSink* t_alloc_sink = nullptr;
}  // namespace

AllocSink* set_thread_alloc_sink(AllocSink* sink) {
  AllocSink* prev = t_alloc_sink;
  t_alloc_sink = sink;
  return prev;
}

AllocSink* thread_alloc_sink() { return t_alloc_sink; }

Tensor::Tensor() : shape_(Shape{0}) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  const auto n = static_cast<std::size_t>(shape_.numel());
  if (t_alloc_sink != nullptr) {
    if (float* slot = t_alloc_sink->take(n)) {
      ptr_ = slot;
      size_ = n;
      return;
    }
  }
  owner_ = std::make_shared<std::vector<float>>(n);
  ptr_ = owner_->data();
  size_ = n;
}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)) {
  RAMIEL_CHECK(static_cast<std::int64_t>(data.size()) == shape_.numel(),
               str_cat("data size ", data.size(), " does not match shape ",
                       shape_.to_string()));
  owner_ = std::make_shared<std::vector<float>>(std::move(data));
  ptr_ = owner_->data();
  size_ = owner_->size();
}

Tensor Tensor::from_external(Shape shape, float* data, std::size_t size) {
  RAMIEL_CHECK(static_cast<std::int64_t>(size) == shape.numel(),
               str_cat("external buffer of ", size,
                       " floats does not match shape ", shape.to_string()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.ptr_ = data;
  t.size_ = size;
  return t;
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  for (float& x : t.mutable_data()) x = value;
  return t;
}

Tensor Tensor::scalar(float value) {
  Tensor t{Shape{}};
  t.mutable_data()[0] = value;
  return t;
}

Tensor Tensor::vec(std::vector<float> values) {
  Shape s{static_cast<std::int64_t>(values.size())};
  return Tensor(std::move(s), std::move(values));
}

Tensor Tensor::random(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.mutable_data()) x = rng.next_float(lo, hi);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  RAMIEL_CHECK(new_shape.numel() == shape_.numel(),
               str_cat("reshape ", shape_.to_string(), " -> ",
                       new_shape.to_string(), " changes element count"));
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::clone() const {
  // Owning by construction — bypasses the AllocSink so a clone taken to
  // rescue a tensor from arena storage cannot land back in the arena.
  Tensor t;
  t.shape_ = shape_;
  t.owner_ = std::make_shared<std::vector<float>>(ptr_, ptr_ + size_);
  t.ptr_ = t.owner_->data();
  t.size_ = size_;
  return t;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    float tol = atol + rtol * std::fabs(db[i]);
    if (std::fabs(da[i] - db[i]) > tol) return false;
  }
  return true;
}

}  // namespace ramiel
