#include "tensor/tensor.h"

#include <cmath>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

Tensor::Tensor() : Tensor(Shape{}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      buf_(std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(shape_.numel()))) {}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)) {
  RAMIEL_CHECK(static_cast<std::int64_t>(data.size()) == shape_.numel(),
               str_cat("data size ", data.size(), " does not match shape ",
                       shape_.to_string()));
  buf_ = std::make_shared<std::vector<float>>(std::move(data));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  for (float& x : t.mutable_data()) x = value;
  return t;
}

Tensor Tensor::scalar(float value) {
  Tensor t{Shape{}};
  t.mutable_data()[0] = value;
  return t;
}

Tensor Tensor::vec(std::vector<float> values) {
  Shape s{static_cast<std::int64_t>(values.size())};
  return Tensor(std::move(s), std::move(values));
}

Tensor Tensor::random(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.mutable_data()) x = rng.next_float(lo, hi);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  RAMIEL_CHECK(new_shape.numel() == shape_.numel(),
               str_cat("reshape ", shape_.to_string(), " -> ",
                       new_shape.to_string(), " changes element count"));
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::clone() const {
  Tensor t(shape_);
  std::copy(buf_->begin(), buf_->end(), t.buf_->begin());
  return t;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    float tol = atol + rtol * std::fabs(db[i]);
    if (std::fabs(da[i] - db[i]) > tol) return false;
  }
  return true;
}

}  // namespace ramiel
