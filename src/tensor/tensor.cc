#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

namespace {
thread_local AllocSink* t_alloc_sink = nullptr;

/// Owner-vector length (in floats) that covers `numel` elements of `dtype`.
std::size_t owner_floats(std::size_t numel, DType dtype) {
  const std::size_t bytes = numel * dtype_size(dtype);
  return (bytes + sizeof(float) - 1) / sizeof(float);
}
}  // namespace

AllocSink* set_thread_alloc_sink(AllocSink* sink) {
  AllocSink* prev = t_alloc_sink;
  t_alloc_sink = sink;
  return prev;
}

AllocSink* thread_alloc_sink() { return t_alloc_sink; }

void Tensor::fail_dtype_access(const char* what) {
  throw Error(str_cat("Tensor::", what,
                      " requires f32 storage; convert through "
                      "cast()/dequantize() first"));
}

Tensor::Tensor() : shape_(Shape{0}) {}

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype) {
  const auto n = static_cast<std::size_t>(shape_.numel());
  if (t_alloc_sink != nullptr) {
    if (float* slot = t_alloc_sink->take(n, dtype_)) {
      ptr_ = slot;
      size_ = n;
      return;
    }
  }
  owner_ = std::make_shared<std::vector<float>>(owner_floats(n, dtype_));
  ptr_ = owner_->data();
  size_ = n;
}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)) {
  RAMIEL_CHECK(static_cast<std::int64_t>(data.size()) == shape_.numel(),
               str_cat("data size ", data.size(), " does not match shape ",
                       shape_.to_string()));
  owner_ = std::make_shared<std::vector<float>>(std::move(data));
  ptr_ = owner_->data();
  size_ = owner_->size();
}

Tensor Tensor::from_external(Shape shape, float* data, std::size_t size) {
  RAMIEL_CHECK(static_cast<std::int64_t>(size) == shape.numel(),
               str_cat("external buffer of ", size,
                       " floats does not match shape ", shape.to_string()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.ptr_ = data;
  t.size_ = size;
  return t;
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  for (float& x : t.mutable_data()) x = value;
  return t;
}

Tensor Tensor::scalar(float value) {
  Tensor t{Shape{}};
  t.mutable_data()[0] = value;
  return t;
}

Tensor Tensor::vec(std::vector<float> values) {
  Shape s{static_cast<std::int64_t>(values.size())};
  return Tensor(std::move(s), std::move(values));
}

Tensor Tensor::random(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.mutable_data()) x = rng.next_float(lo, hi);
  return t;
}

std::span<const std::uint16_t> Tensor::u16_data() const {
  RAMIEL_CHECK(dtype_ == DType::kF16 || dtype_ == DType::kBF16,
               "u16_data requires f16/bf16 storage");
  return {reinterpret_cast<const std::uint16_t*>(ptr_), size_};
}

std::span<std::uint16_t> Tensor::u16_mutable_data() {
  RAMIEL_CHECK(dtype_ == DType::kF16 || dtype_ == DType::kBF16,
               "u16_mutable_data requires f16/bf16 storage");
  return {reinterpret_cast<std::uint16_t*>(ptr_), size_};
}

std::span<const std::int8_t> Tensor::i8_data() const {
  RAMIEL_CHECK(dtype_ == DType::kI8, "i8_data requires i8 storage");
  return {reinterpret_cast<const std::int8_t*>(ptr_), size_};
}

std::span<std::int8_t> Tensor::i8_mutable_data() {
  RAMIEL_CHECK(dtype_ == DType::kI8, "i8_mutable_data requires i8 storage");
  return {reinterpret_cast<std::int8_t*>(ptr_), size_};
}

Tensor Tensor::cast(DType dtype) const {
  if (dtype == dtype_) return *this;
  RAMIEL_CHECK(dtype != DType::kI8 && dtype_ != DType::kI8,
               "i8 conversions go through quantize_per_channel/dequantize");
  Tensor out(shape_, dtype);
  if (size_ == 0) return out;
  if (dtype_ == DType::kF32) {
    convert_f32_to_storage(ptr_, out.ptr_, dtype, size_);
  } else if (dtype == DType::kF32) {
    convert_storage_to_f32(ptr_, dtype_, out.ptr_, size_);
  } else {
    // f16 <-> bf16: bounce through f32 (no direct use today, kept correct).
    std::vector<float> tmp(size_);
    convert_storage_to_f32(ptr_, dtype_, tmp.data(), size_);
    convert_f32_to_storage(tmp.data(), out.ptr_, dtype, size_);
  }
  return out;
}

Tensor Tensor::quantize_per_channel(int axis) const {
  RAMIEL_CHECK(dtype_ == DType::kF32,
               "quantize_per_channel requires an f32 source");
  const int rank = shape_.rank();
  RAMIEL_CHECK(rank >= 1, "quantize_per_channel requires rank >= 1");
  const int ax = shape_.normalize_axis(axis);
  const std::int64_t channels = shape_.dim(ax);
  std::int64_t inner = 1;
  for (int d = ax + 1; d < rank; ++d) inner *= shape_.dim(d);
  std::int64_t outer = 1;
  for (int d = 0; d < ax; ++d) outer *= shape_.dim(d);

  auto meta = std::make_shared<QuantMeta>();
  meta->axis = ax;
  meta->scales.assign(static_cast<std::size_t>(channels), 0.0f);
  meta->sums.assign(static_cast<std::size_t>(channels), 0);

  // Per-channel absmax -> symmetric scale absmax/127. An all-zero channel
  // keeps scale 0: every element quantizes to 0 and dequantizes exactly.
  for (std::int64_t c = 0; c < channels; ++c) {
    float amax = 0.0f;
    for (std::int64_t o = 0; o < outer; ++o) {
      const float* src = ptr_ + (o * channels + c) * inner;
      for (std::int64_t i = 0; i < inner; ++i) {
        amax = std::max(amax, std::fabs(src[i]));
      }
    }
    meta->scales[static_cast<std::size_t>(c)] = amax / 127.0f;
  }

  Tensor out(shape_, DType::kI8);
  auto* q = reinterpret_cast<std::int8_t*>(out.ptr_);
  for (std::int64_t c = 0; c < channels; ++c) {
    const float scale = meta->scales[static_cast<std::size_t>(c)];
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    std::int32_t sum = 0;
    for (std::int64_t o = 0; o < outer; ++o) {
      const float* src = ptr_ + (o * channels + c) * inner;
      std::int8_t* dst = q + (o * channels + c) * inner;
      for (std::int64_t i = 0; i < inner; ++i) {
        const int v = static_cast<int>(std::lrintf(src[i] * inv));
        const int clamped = std::clamp(v, -127, 127);
        dst[i] = static_cast<std::int8_t>(clamped);
        sum += clamped;
      }
    }
    meta->sums[static_cast<std::size_t>(c)] = sum;
  }
  out.quant_ = std::move(meta);
  return out;
}

Tensor Tensor::dequantize() const {
  RAMIEL_CHECK(dtype_ == DType::kI8 && quant_ != nullptr,
               "dequantize requires i8 storage with quantization metadata");
  const int ax = quant_->axis;
  const std::int64_t channels = shape_.dim(ax);
  std::int64_t inner = 1;
  for (int d = ax + 1; d < shape_.rank(); ++d) inner *= shape_.dim(d);
  std::int64_t outer = 1;
  for (int d = 0; d < ax; ++d) outer *= shape_.dim(d);

  Tensor out(shape_, DType::kF32);
  const auto* q = reinterpret_cast<const std::int8_t*>(ptr_);
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float scale = quant_->scales[static_cast<std::size_t>(c)];
      const std::int8_t* src = q + (o * channels + c) * inner;
      float* dst = out.ptr_ + (o * channels + c) * inner;
      for (std::int64_t i = 0; i < inner; ++i) {
        dst[i] = scale * static_cast<float>(src[i]);
      }
    }
  }
  return out;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  RAMIEL_CHECK(new_shape.numel() == shape_.numel(),
               str_cat("reshape ", shape_.to_string(), " -> ",
                       new_shape.to_string(), " changes element count"));
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::clone() const {
  // Owning by construction — bypasses the AllocSink so a clone taken to
  // rescue a tensor from arena storage cannot land back in the arena.
  Tensor t;
  t.shape_ = shape_;
  t.dtype_ = dtype_;
  t.quant_ = quant_;
  t.owner_ =
      std::make_shared<std::vector<float>>(owner_floats(size_, dtype_));
  std::memcpy(t.owner_->data(), ptr_, size_ * dtype_size(dtype_));
  t.ptr_ = t.owner_->data();
  t.size_ = size_;
  return t;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    float tol = atol + rtol * std::fabs(db[i]);
    if (std::fabs(da[i] - db[i]) > tol) return false;
  }
  return true;
}

}  // namespace ramiel
