// Quantized (i8) GEMM driver.
//
// One operand is statically quantized s8 weights (symmetric, per output
// channel — QuantMeta rides on the weight tensor); the other is quantized
// on-pack per call to u8 in [1,127] around zero point 64:
//
//   q(x) = clamp(round(x / s_dyn), -63, 63) + 64,   s_dyn = absmax / 63
//
// The +64 offset keeps the dynamic operand unsigned for the x86 dot-4
// instructions; the merge step subtracts the offset analytically using the
// per-channel sums of the quantized weights (acc - 64 * ws[ch]) instead of
// per-element zero-point math. Accumulation is exact i32 into a staged
// stripe, dequantized once per output element:
//
//   C[m,n] = act(s_dyn * sw[ch] * (acc[m,n] - 64 * ws[ch]) + bias)
//
// Every microkernel tier (scalar, AVX2 maddubs, AVX-512 VNNI) runs through
// this one driver with this one scheme, and none of the integer chains can
// saturate on [0,127] x [-127,127] inputs — so results are bit-identical
// across dispatch, and `ctest -L quant` can assert tier equivalence exactly.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "support/check.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/microkernel.h"
#include "tensor/kernels/scratch.h"

namespace ramiel::kernels {
namespace {

struct QGemmMetrics {
  obs::Counter* scalar = obs::registry().counter(
      "ramiel_kernel_qgemm_scalar_total",
      "Quantized GEMM calls executed with the scalar dot-4 microkernel");
  obs::Counter* avx2 = obs::registry().counter(
      "ramiel_kernel_qgemm_avx2_total",
      "Quantized GEMM calls executed with the AVX2 maddubs microkernel");
  obs::Counter* vnni = obs::registry().counter(
      "ramiel_kernel_qgemm_vnni_total",
      "Quantized GEMM calls executed with the AVX-512 VNNI microkernel");
};

QGemmMetrics& qgemm_metrics() {
  static QGemmMetrics* m = new QGemmMetrics();
  return *m;
}

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

inline float activate(Activation act, float v) {
  switch (act) {
    case Activation::kNone:
      return v;
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
  }
  return v;
}

inline float bias_at(const Epilogue& ep, std::int64_t m, std::int64_t n) {
  return ep.bias == nullptr
             ? 0.0f
             : ep.bias[m * ep.bias_stride_m + n * ep.bias_stride_n];
}

struct LoadF32 {
  static float at(const void* p, std::int64_t i) {
    return static_cast<const float*>(p)[i];
  }
};
struct LoadF16 {
  static float at(const void* p, std::int64_t i) {
    return f16_to_f32(static_cast<const std::uint16_t*>(p)[i]);
  }
};
struct LoadBF16 {
  static float at(const void* p, std::int64_t i) {
    return bf16_to_f32(static_cast<const std::uint16_t*>(p)[i]);
  }
};

// Clamp in float *before* rounding: calibrated ranges can undershoot the
// live values arbitrarily, and lrintf on a product beyond i32 range is
// undefined — the pre-clamp keeps saturating inputs well-defined and
// matches the AVX2 row quantizer (vminps/vmaxps then vcvtps2dq) exactly.
inline std::uint8_t quantize_u8(float x, float inv_sd) {
  const float scaled = std::clamp(x * inv_sd, -63.0f, 63.0f);
  return static_cast<std::uint8_t>(static_cast<int>(std::lrintf(scaled)) + 64);
}

/// absmax over a strided M x K view (the uncalibrated dynamic-range scan).
template <typename Load>
float strided_absmax(const void* P, std::int64_t rows, std::int64_t cols,
                     std::int64_t rs, std::int64_t cs) {
  float m = 0.0f;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      m = std::max(m, std::fabs(Load::at(P, r * rs + c * cs)));
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Panel packers. Layouts match microkernel.h: k in groups of 4,
// a_panel tiles [kg][kMR][4] bytes, b_panel panels [kg][kNR][4] bytes.
// All padding (k tail, M/N edges) is written as 0 — the signed operand's
// zeros annihilate whatever the other side holds, and edge outputs are
// masked at the dequant step anyway.
// ---------------------------------------------------------------------------

template <typename Load>
void pack_a_dyn(std::uint8_t* dst, const void* A, std::int64_t rs_a,
                std::int64_t cs_a, std::int64_t m0, std::int64_t mc,
                std::int64_t k0, std::int64_t kc, float inv_sd) {
  const std::int64_t tiles = ceil_div(mc, kMR);
  const std::int64_t kg = ceil_div(kc, 4);
  for (std::int64_t i = 0; i < tiles; ++i) {
    std::uint8_t* tile = dst + i * kg * kMR * 4;
    for (std::int64_t g = 0; g < kg; ++g) {
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t row = i * kMR + r;
        std::uint8_t* out = tile + (g * kMR + r) * 4;
        for (std::int64_t u = 0; u < 4; ++u) {
          const std::int64_t k = g * 4 + u;
          out[u] = (row < mc && k < kc)
                       ? quantize_u8(
                             Load::at(A, (m0 + row) * rs_a + (k0 + k) * cs_a),
                             inv_sd)
                       : 0;
        }
      }
    }
  }
}

/// Contiguous-row (cs_a == 1) dynamic A packer: each source row is widened
/// once with the bulk converters, quantized as a row (AVX2 when the tier
/// has it), then scattered into the k-group layout as 4-byte moves. The
/// generic pack_a_dyn does one scalar conversion + quantize call per
/// element, which costs more than the integer inner loop at GEMM-256.
void pack_a_dyn_rows(std::uint8_t* dst, const void* A, DType dt,
                     std::int64_t rs_a, std::int64_t m0, std::int64_t mc,
                     std::int64_t k0, std::int64_t kc, float inv_sd,
                     const LowpRowKernels& rk) {
  const std::size_t esz = dtype_size(dt);
  const auto* base = static_cast<const std::uint8_t*>(A);
  const std::int64_t tiles = ceil_div(mc, kMR);
  const std::int64_t kg = ceil_div(kc, 4);
  alignas(64) float rowbuf[kKC];
  alignas(64) std::uint8_t qrow[kKC + 4];
  for (std::int64_t i = 0; i < tiles; ++i) {
    std::uint8_t* tile = dst + i * kg * kMR * 4;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const std::int64_t row = i * kMR + r;
      if (row >= mc) {
        for (std::int64_t g = 0; g < kg; ++g) {
          std::memset(tile + (g * kMR + r) * 4, 0, 4);
        }
        continue;
      }
      const float* src;
      if (dt == DType::kF32) {
        src = reinterpret_cast<const float*>(base) + (m0 + row) * rs_a + k0;
      } else {
        rows_to_f32(base + static_cast<std::size_t>((m0 + row) * rs_a + k0) *
                               esz,
                    dt, rowbuf, static_cast<std::size_t>(kc));
        src = rowbuf;
      }
      if (rk.quantize_u8_row != nullptr) {
        rk.quantize_u8_row(src, qrow, kc, inv_sd);
      } else {
        for (std::int64_t k = 0; k < kc; ++k) {
          qrow[k] = quantize_u8(src[k], inv_sd);
        }
      }
      for (std::int64_t k = kc; k < kg * 4; ++k) qrow[k] = 0;
      for (std::int64_t g = 0; g < kg; ++g) {
        std::memcpy(tile + (g * kMR + r) * 4, qrow + g * 4, 4);
      }
    }
  }
}

/// Contiguous-row (cs_b == 1) dynamic B packer: quantizes each k-row's
/// NR-wide slice in one call and scatters bytes into the column-group
/// layout.
void pack_b_dyn_rows(std::uint8_t* dst, const void* B, DType dt,
                     std::int64_t rs_b, std::int64_t k0, std::int64_t kc,
                     std::int64_t n0, std::int64_t nvalid, float inv_sd,
                     const LowpRowKernels& rk) {
  const std::size_t esz = dtype_size(dt);
  const auto* base = static_cast<const std::uint8_t*>(B);
  const std::int64_t kg = ceil_div(kc, 4);
  const std::int64_t cols = std::clamp<std::int64_t>(nvalid, 0, kNR);
  std::memset(dst, 0, static_cast<std::size_t>(kg * kNR * 4));
  alignas(64) float rowbuf[kNR];
  alignas(64) std::uint8_t qrow[kNR];
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* src;
    if (dt == DType::kF32) {
      src = reinterpret_cast<const float*>(base) + (k0 + k) * rs_b + n0;
    } else {
      rows_to_f32(base + static_cast<std::size_t>((k0 + k) * rs_b + n0) * esz,
                  dt, rowbuf, static_cast<std::size_t>(cols));
      src = rowbuf;
    }
    if (rk.quantize_u8_row != nullptr) {
      rk.quantize_u8_row(src, qrow, cols, inv_sd);
    } else {
      for (std::int64_t j = 0; j < cols; ++j) {
        qrow[j] = quantize_u8(src[j], inv_sd);
      }
    }
    std::uint8_t* grp = dst + (k / 4) * kNR * 4 + (k & 3);
    for (std::int64_t j = 0; j < cols; ++j) grp[j * 4] = qrow[j];
  }
}

void pack_a_s8(std::uint8_t* dst, const void* A, std::int64_t rs_a,
               std::int64_t cs_a, std::int64_t m0, std::int64_t mc,
               std::int64_t k0, std::int64_t kc) {
  const auto* src = static_cast<const std::int8_t*>(A);
  const std::int64_t tiles = ceil_div(mc, kMR);
  const std::int64_t kg = ceil_div(kc, 4);
  if (cs_a == 1) {
    // Unit-stride k: whole k-groups are contiguous source bytes, so each
    // row packs as 4-byte moves instead of per-element bounds checks.
    const std::int64_t full = kc / 4;
    for (std::int64_t i = 0; i < tiles; ++i) {
      auto* tile = reinterpret_cast<std::int8_t*>(dst + i * kg * kMR * 4);
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t row = i * kMR + r;
        if (row >= mc) {
          for (std::int64_t g = 0; g < kg; ++g) {
            std::memset(tile + (g * kMR + r) * 4, 0, 4);
          }
          continue;
        }
        const std::int8_t* prow = src + (m0 + row) * rs_a + k0;
        for (std::int64_t g = 0; g < full; ++g) {
          std::memcpy(tile + (g * kMR + r) * 4, prow + g * 4, 4);
        }
        if (full < kg) {
          std::int8_t* out = tile + (full * kMR + r) * 4;
          const std::int64_t rem = kc - full * 4;
          std::memset(out, 0, 4);
          std::memcpy(out, prow + full * 4, static_cast<std::size_t>(rem));
        }
      }
    }
    return;
  }
  for (std::int64_t i = 0; i < tiles; ++i) {
    auto* tile = reinterpret_cast<std::int8_t*>(dst + i * kg * kMR * 4);
    for (std::int64_t g = 0; g < kg; ++g) {
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t row = i * kMR + r;
        std::int8_t* out = tile + (g * kMR + r) * 4;
        for (std::int64_t u = 0; u < 4; ++u) {
          const std::int64_t k = g * 4 + u;
          out[u] = (row < mc && k < kc)
                       ? src[(m0 + row) * rs_a + (k0 + k) * cs_a]
                       : 0;
        }
      }
    }
  }
}

template <typename Load>
void pack_b_dyn(std::uint8_t* dst, const void* B, std::int64_t rs_b,
                std::int64_t cs_b, std::int64_t k0, std::int64_t kc,
                std::int64_t n0, std::int64_t nvalid, float inv_sd) {
  const std::int64_t kg = ceil_div(kc, 4);
  for (std::int64_t g = 0; g < kg; ++g) {
    std::uint8_t* row = dst + g * kNR * 4;
    for (std::int64_t j = 0; j < kNR; ++j) {
      std::uint8_t* out = row + j * 4;
      for (std::int64_t u = 0; u < 4; ++u) {
        const std::int64_t k = g * 4 + u;
        out[u] = (j < nvalid && k < kc)
                     ? quantize_u8(
                           Load::at(B, (k0 + k) * rs_b + (n0 + j) * cs_b),
                           inv_sd)
                     : 0;
      }
    }
  }
}

void pack_b_s8(std::uint8_t* dst, const void* B, std::int64_t rs_b,
               std::int64_t cs_b, std::int64_t k0, std::int64_t kc,
               std::int64_t n0, std::int64_t nvalid) {
  const auto* src = static_cast<const std::int8_t*>(B);
  const std::int64_t kg = ceil_div(kc, 4);
  if (cs_b == 1) {
    // Unit-stride n: zero the panel once, then stride-4 scatter each
    // contiguous source k-row — no per-element bounds checks.
    const std::int64_t cols = std::clamp<std::int64_t>(nvalid, 0, kNR);
    std::memset(dst, 0, static_cast<std::size_t>(kg * kNR * 4));
    for (std::int64_t k = 0; k < kc; ++k) {
      const std::int8_t* prow = src + (k0 + k) * rs_b + n0;
      auto* grp = reinterpret_cast<std::int8_t*>(dst + (k / 4) * kNR * 4) +
                  (k & 3);
      for (std::int64_t j = 0; j < cols; ++j) grp[j * 4] = prow[j];
    }
    return;
  }
  for (std::int64_t g = 0; g < kg; ++g) {
    auto* row = reinterpret_cast<std::int8_t*>(dst + g * kNR * 4);
    for (std::int64_t j = 0; j < kNR; ++j) {
      std::int8_t* out = row + j * 4;
      for (std::int64_t u = 0; u < 4; ++u) {
        const std::int64_t k = g * 4 + u;
        out[u] = (j < nvalid && k < kc)
                     ? src[(k0 + k) * rs_b + (n0 + j) * cs_b]
                     : 0;
      }
    }
  }
}

/// Accumulates one microkernel tile into the i32 stage stripe.
inline void merge_tile_i32(std::int32_t* S, std::int64_t lds, std::int64_t m0,
                           std::int64_t n0, std::int64_t rows,
                           std::int64_t cols, const std::int32_t* acc,
                           bool first) {
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int32_t* dst = S + (m0 + r) * lds + n0;
    const std::int32_t* a = acc + r * kNR;
    if (first) {
      for (std::int64_t j = 0; j < cols; ++j) dst[j] = a[j];
    } else {
      for (std::int64_t j = 0; j < cols; ++j) dst[j] += a[j];
    }
  }
}

using PackDynAFn = void (*)(std::uint8_t*, const void*, std::int64_t,
                            std::int64_t, std::int64_t, std::int64_t,
                            std::int64_t, std::int64_t, float);
using PackDynBFn = void (*)(std::uint8_t*, const void*, std::int64_t,
                            std::int64_t, std::int64_t, std::int64_t,
                            std::int64_t, std::int64_t, float);

PackDynAFn pack_a_dyn_for(DType dt) {
  switch (dt) {
    case DType::kF32: return &pack_a_dyn<LoadF32>;
    case DType::kF16: return &pack_a_dyn<LoadF16>;
    case DType::kBF16: return &pack_a_dyn<LoadBF16>;
    case DType::kI8: break;
  }
  RAMIEL_CHECK(false, "qgemm: dynamic operand cannot be i8");
  return nullptr;
}

PackDynBFn pack_b_dyn_for(DType dt) {
  switch (dt) {
    case DType::kF32: return &pack_b_dyn<LoadF32>;
    case DType::kF16: return &pack_b_dyn<LoadF16>;
    case DType::kBF16: return &pack_b_dyn<LoadBF16>;
    case DType::kI8: break;
  }
  RAMIEL_CHECK(false, "qgemm: dynamic operand cannot be i8");
  return nullptr;
}

float measure_absmax(const void* P, DType dt, std::int64_t rows,
                     std::int64_t cols, std::int64_t rs, std::int64_t cs) {
  if (cs == 1) {
    // Contiguous rows: the bulk absmax (SIMD f32 scan, bulk widening for
    // the half formats) replaces one scalar conversion call per element.
    const auto* base = static_cast<const std::uint8_t*>(P);
    const std::size_t esz = dtype_size(dt);
    float m = 0.0f;
    for (std::int64_t r = 0; r < rows; ++r) {
      m = std::max(m, absmax(base + static_cast<std::size_t>(r * rs) * esz,
                             dt, static_cast<std::size_t>(cols)));
    }
    return m;
  }
  switch (dt) {
    case DType::kF32: return strided_absmax<LoadF32>(P, rows, cols, rs, cs);
    case DType::kF16: return strided_absmax<LoadF16>(P, rows, cols, rs, cs);
    case DType::kBF16: return strided_absmax<LoadBF16>(P, rows, cols, rs, cs);
    case DType::kI8: break;
  }
  RAMIEL_CHECK(false, "qgemm: dynamic operand cannot be i8");
  return 0.0f;
}

}  // namespace

void qgemm(std::int64_t M, std::int64_t N, std::int64_t K, const void* A,
           DType a_dtype, std::int64_t rs_a, std::int64_t cs_a, const void* B,
           DType b_dtype, std::int64_t rs_b, std::int64_t cs_b,
           const float* ch_scales, const std::int32_t* ch_sums, void* C,
           DType c_dtype, std::int64_t ldc, float dyn_absmax,
           const Epilogue& ep, const OpContext& ctx) {
  const bool a_is_i8 = a_dtype == DType::kI8;
  const bool b_is_i8 = b_dtype == DType::kI8;
  RAMIEL_CHECK(a_is_i8 != b_is_i8,
               "qgemm: exactly one operand must be i8 weights");
  RAMIEL_CHECK(c_dtype != DType::kI8, "qgemm: i8 output is not supported");
  RAMIEL_CHECK(ch_scales != nullptr && ch_sums != nullptr,
               "qgemm: per-channel scales/sums are required");
  if (M <= 0 || N <= 0) return;

  if (dyn_absmax < 0.0f) {
    dyn_absmax = a_is_i8 ? measure_absmax(B, b_dtype, K, N, rs_b, cs_b)
                         : measure_absmax(A, a_dtype, M, K, rs_a, cs_a);
  }
  if (K <= 0 || dyn_absmax == 0.0f) {
    // All-zero dynamic operand (or empty reduction): C = act(bias). The
    // K<=0 path of sgemm_dt never touches A/B.
    sgemm_dt(M, N, 0, nullptr, DType::kF32, 0, 0, nullptr, DType::kF32, 0, 0,
             C, c_dtype, ldc, ep, ctx);
    return;
  }
  const float sd = dyn_absmax / 63.0f;
  const float inv_sd = 63.0f / dyn_absmax;

  const I8Kernel tier = active_i8_kernel();
  I8Microkernels mks;
  switch (tier) {
    case I8Kernel::kVnni:
      mks = vnni_i8_microkernels();
      qgemm_metrics().vnni->inc();
      break;
    case I8Kernel::kAvx2:
      mks = avx2_i8_microkernels();
      qgemm_metrics().avx2->inc();
      break;
    case I8Kernel::kScalar:
      mks = I8Microkernels{&microkernel_i8_scalar_au, &microkernel_i8_scalar_as};
      qgemm_metrics().scalar->inc();
      break;
  }
  // A signed = weights-left (conv); A unsigned = activations-left (gemm).
  const MicroKernelI8Fn ukr = a_is_i8 ? mks.as : mks.au;
  RAMIEL_CHECK(ukr != nullptr, "qgemm: no microkernel for the active tier");

  // RAMIEL_KERNEL=scalar keeps even the row helpers on their portable
  // loops; the helpers are bit-exact either way, so this only costs speed.
  const LowpRowKernels rk = tier == I8Kernel::kScalar
                                ? LowpRowKernels{}
                                : avx2_lowp_row_kernels();

  const PackDynAFn do_pack_a_dyn = a_is_i8 ? nullptr : pack_a_dyn_for(a_dtype);
  const PackDynBFn do_pack_b_dyn = b_is_i8 ? nullptr : pack_b_dyn_for(b_dtype);

  const std::int64_t mtiles_total = ceil_div(M, kMC);
  const std::int64_t lanes =
      std::max<std::int64_t>(1, std::min<std::int64_t>(
                                    std::max(1, ctx.threads), mtiles_total));

  // Scratch layout (in floats): i32 stage stripe [M x nc_max], then the
  // packed-B byte stripe, then one packed-A byte slice per lane. Byte panels
  // only need 4-byte alignment (unaligned SIMD loads in the microkernels).
  const std::int64_t kc_max = std::min(K, kKC);
  const std::int64_t nc_max = std::min(N, kNC);
  const std::int64_t kg_max = ceil_div(kc_max, 4);
  const std::int64_t b_bytes = ceil_div(nc_max, kNR) * kg_max * kNR * 4;
  const std::int64_t a_bytes =
      ceil_div(std::min(M, kMC), kMR) * kg_max * kMR * 4;
  const std::int64_t stage_floats = M * nc_max;
  KernelScratch scratch(static_cast<std::size_t>(
      stage_floats + ceil_div(b_bytes, 4) + lanes * ceil_div(a_bytes, 4)));
  auto* const stage = reinterpret_cast<std::int32_t*>(scratch.data());
  auto* const bp = reinterpret_cast<std::uint8_t*>(stage + stage_floats);
  std::uint8_t* const ap0 = bp + ceil_div(b_bytes, 4) * 4;

  const std::size_t c_esz = dtype_size(c_dtype);
  auto* const cb = static_cast<std::uint8_t*>(C);

  for (std::int64_t n0 = 0; n0 < N; n0 += kNC) {
    const std::int64_t nc = std::min(kNC, N - n0);
    const std::int64_t npan = ceil_div(nc, kNR);
    for (std::int64_t k0 = 0; k0 < K; k0 += kKC) {
      const std::int64_t kc = std::min(kKC, K - k0);
      const std::int64_t kg = ceil_div(kc, 4);
      const bool first = k0 == 0;

      dispatch_parallel_for(
          ctx, npan, 2 * kc * kNR, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t j = lo; j < hi; ++j) {
              std::uint8_t* dst = bp + j * kg * kNR * 4;
              if (b_is_i8) {
                pack_b_s8(dst, B, rs_b, cs_b, k0, kc, n0 + j * kNR,
                          nc - j * kNR);
              } else if (cs_b == 1) {
                pack_b_dyn_rows(dst, B, b_dtype, rs_b, k0, kc, n0 + j * kNR,
                                nc - j * kNR, inv_sd, rk);
              } else {
                do_pack_b_dyn(dst, B, rs_b, cs_b, k0, kc, n0 + j * kNR,
                              nc - j * kNR, inv_sd);
              }
            }
          });

      const std::int64_t parts = std::min(lanes, mtiles_total);
      const std::int64_t part_cost =
          2 * ceil_div(mtiles_total, parts) * kMC * kc * nc;
      dispatch_parallel_for(
          ctx, parts, part_cost, [&](std::int64_t plo, std::int64_t phi) {
            alignas(64) std::int32_t acc[kMR * kNR];
            for (std::int64_t p = plo; p < phi; ++p) {
              std::uint8_t* ap = ap0 + p * a_bytes;
              const std::int64_t t_begin = p * mtiles_total / parts;
              const std::int64_t t_end = (p + 1) * mtiles_total / parts;
              for (std::int64_t t = t_begin; t < t_end; ++t) {
                const std::int64_t m0 = t * kMC;
                const std::int64_t mc = std::min(kMC, M - m0);
                const std::int64_t subtiles = ceil_div(mc, kMR);
                if (a_is_i8) {
                  pack_a_s8(ap, A, rs_a, cs_a, m0, mc, k0, kc);
                } else if (cs_a == 1) {
                  pack_a_dyn_rows(ap, A, a_dtype, rs_a, m0, mc, k0, kc,
                                  inv_sd, rk);
                } else {
                  do_pack_a_dyn(ap, A, rs_a, cs_a, m0, mc, k0, kc, inv_sd);
                }
                for (std::int64_t j = 0; j < npan; ++j) {
                  const std::uint8_t* bpj = bp + j * kg * kNR * 4;
                  const std::int64_t cols = std::min(kNR, nc - j * kNR);
                  for (std::int64_t i = 0; i < subtiles; ++i) {
                    ukr(kg, ap + i * kg * kMR * 4, bpj, acc);
                    merge_tile_i32(stage, nc, m0 + i * kMR, j * kNR,
                                   std::min(kMR, mc - i * kMR), cols, acc,
                                   first);
                  }
                }
              }
            }
          });
    }

    // Dequantize the stripe: one rounding per output element, fused bias +
    // activation, storage-dtype narrowing on the way out. The per-channel
    // scale/offset are hoisted out of the inner loop (a broadcast when
    // channels are rows, precomputed stripe arrays when they are columns)
    // so each pass is a flat loop the compiler can vectorize.
    std::vector<float> col_scale;
    std::vector<std::int32_t> col_off;
    if (!a_is_i8) {
      col_scale.resize(static_cast<std::size_t>(nc));
      col_off.resize(static_cast<std::size_t>(nc));
      for (std::int64_t j = 0; j < nc; ++j) {
        col_scale[j] = sd * ch_scales[n0 + j];
        col_off[j] = 64 * ch_sums[n0 + j];
      }
    }
    dispatch_parallel_for(ctx, M, 6 * nc, [&](std::int64_t lo,
                                              std::int64_t hi) {
      std::vector<float> row;
      if (c_dtype != DType::kF32) row.resize(static_cast<std::size_t>(nc));
      for (std::int64_t m = lo; m < hi; ++m) {
        const std::int32_t* src = stage + m * nc;
        float* out = c_dtype == DType::kF32
                         ? reinterpret_cast<float*>(cb) + m * ldc + n0
                         : row.data();
        if (a_is_i8) {
          const float s = sd * ch_scales[m];
          const std::int32_t off = 64 * ch_sums[m];
          for (std::int64_t j = 0; j < nc; ++j) {
            out[j] = s * static_cast<float>(src[j] - off);
          }
        } else {
          for (std::int64_t j = 0; j < nc; ++j) {
            out[j] = col_scale[j] * static_cast<float>(src[j] - col_off[j]);
          }
        }
        if (ep.bias != nullptr) {
          if (ep.bias_stride_n == 1) {
            const float* b = ep.bias + m * ep.bias_stride_m + n0;
            for (std::int64_t j = 0; j < nc; ++j) out[j] += b[j];
          } else if (ep.bias_stride_n == 0) {
            const float b = ep.bias[m * ep.bias_stride_m];
            for (std::int64_t j = 0; j < nc; ++j) out[j] += b;
          } else {
            for (std::int64_t j = 0; j < nc; ++j) {
              out[j] += bias_at(ep, m, n0 + j);
            }
          }
        }
        if (ep.act == Activation::kRelu) {
          for (std::int64_t j = 0; j < nc; ++j) {
            out[j] = out[j] > 0.0f ? out[j] : 0.0f;
          }
        } else if (ep.act == Activation::kSigmoid) {
          for (std::int64_t j = 0; j < nc; ++j) {
            out[j] = activate(ep.act, out[j]);
          }
        }
        if (c_dtype != DType::kF32) {
          rows_from_f32(row.data(), cb + (m * ldc + n0) * c_esz, c_dtype,
                        static_cast<std::size_t>(nc));
        }
      }
    });
  }
}

}  // namespace ramiel::kernels
