// Explicit AVX2+FMA microkernel. This TU is compiled with -mavx2 -mfma
// (see src/tensor/CMakeLists.txt) and must contain nothing that runs on
// hosts without those features: the only exported symbol is a function
// pointer the dispatcher reads *after* its CPUID probe succeeds.
#include "tensor/kernels/microkernel.h"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace ramiel::kernels {
namespace {

// 6x16 register tile: two 8-lane accumulators per row.
void ukr_avx2(std::int64_t kc, const float* a_panel, const float* b_panel,
              float* acc) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();

  const float* a = a_panel;
  const float* b = b_panel;

  // One k step: 2 B loads + 6 A broadcasts feed 12 FMAs, so the loop is
  // FMA-throughput-bound on any 2-FMA-port core. Unroll by 2 to hide the
  // loop-carried bookkeeping and give the scheduler two independent load
  // streams per iteration; both panels are packed k-major, so the prefetch
  // distance is a fixed small stride.
#define RAMIEL_UKR_STEP(AK, BK)                      \
  do {                                               \
    const __m256 b0 = _mm256_loadu_ps((BK));         \
    const __m256 b1 = _mm256_loadu_ps((BK) + 8);     \
    __m256 av = _mm256_broadcast_ss((AK) + 0);       \
    c00 = _mm256_fmadd_ps(av, b0, c00);              \
    c01 = _mm256_fmadd_ps(av, b1, c01);              \
    av = _mm256_broadcast_ss((AK) + 1);              \
    c10 = _mm256_fmadd_ps(av, b0, c10);              \
    c11 = _mm256_fmadd_ps(av, b1, c11);              \
    av = _mm256_broadcast_ss((AK) + 2);              \
    c20 = _mm256_fmadd_ps(av, b0, c20);              \
    c21 = _mm256_fmadd_ps(av, b1, c21);              \
    av = _mm256_broadcast_ss((AK) + 3);              \
    c30 = _mm256_fmadd_ps(av, b0, c30);              \
    c31 = _mm256_fmadd_ps(av, b1, c31);              \
    av = _mm256_broadcast_ss((AK) + 4);              \
    c40 = _mm256_fmadd_ps(av, b0, c40);              \
    c41 = _mm256_fmadd_ps(av, b1, c41);              \
    av = _mm256_broadcast_ss((AK) + 5);              \
    c50 = _mm256_fmadd_ps(av, b0, c50);              \
    c51 = _mm256_fmadd_ps(av, b1, c51);              \
  } while (0)

  std::int64_t k = 0;
  for (; k + 3 < kc; k += 4) {
    _mm_prefetch(reinterpret_cast<const char*>(b + 8 * kNR), _MM_HINT_T0);
    RAMIEL_UKR_STEP(a, b);
    RAMIEL_UKR_STEP(a + kMR, b + kNR);
    RAMIEL_UKR_STEP(a + 2 * kMR, b + 2 * kNR);
    RAMIEL_UKR_STEP(a + 3 * kMR, b + 3 * kNR);
    a += 4 * kMR;
    b += 4 * kNR;
  }
  for (; k < kc; ++k) {
    RAMIEL_UKR_STEP(a, b);
    a += kMR;
    b += kNR;
  }
#undef RAMIEL_UKR_STEP

  _mm256_store_ps(acc + 0 * kNR, c00);
  _mm256_store_ps(acc + 0 * kNR + 8, c01);
  _mm256_store_ps(acc + 1 * kNR, c10);
  _mm256_store_ps(acc + 1 * kNR + 8, c11);
  _mm256_store_ps(acc + 2 * kNR, c20);
  _mm256_store_ps(acc + 2 * kNR + 8, c21);
  _mm256_store_ps(acc + 3 * kNR, c30);
  _mm256_store_ps(acc + 3 * kNR + 8, c31);
  _mm256_store_ps(acc + 4 * kNR, c40);
  _mm256_store_ps(acc + 4 * kNR + 8, c41);
  _mm256_store_ps(acc + 5 * kNR, c50);
  _mm256_store_ps(acc + 5 * kNR + 8, c51);
}

}  // namespace

MicroKernelFn avx2_microkernel() { return &ukr_avx2; }

}  // namespace ramiel::kernels

#else  // non-x86 target or compiler without AVX2 codegen

namespace ramiel::kernels {

MicroKernelFn avx2_microkernel() { return nullptr; }

}  // namespace ramiel::kernels

#endif
