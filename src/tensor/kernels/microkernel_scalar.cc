#include "tensor/kernels/microkernel.h"

namespace ramiel::kernels {

// Portable microkernel over the packed panels. The fixed-trip inner loops
// over an accumulator array auto-vectorize to whatever the baseline target
// offers (SSE2 on x86-64), which keeps the packed driver profitable even
// without the explicit AVX2 kernel.
void microkernel_scalar(std::int64_t kc, const float* a_panel,
                        const float* b_panel, float* acc) {
  float c[kMR][kNR] = {};
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* a = a_panel + k * kMR;
    const float* b = b_panel + k * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float av = a[r];
      for (std::int64_t j = 0; j < kNR; ++j) c[r][j] += av * b[j];
    }
  }
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t j = 0; j < kNR; ++j) acc[r * kNR + j] = c[r][j];
  }
}

}  // namespace ramiel::kernels
