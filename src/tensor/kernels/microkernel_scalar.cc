#include "tensor/kernels/microkernel.h"

namespace ramiel::kernels {

// Portable microkernel over the packed panels. The fixed-trip inner loops
// over an accumulator array auto-vectorize to whatever the baseline target
// offers (SSE2 on x86-64), which keeps the packed driver profitable even
// without the explicit AVX2 kernel.
void microkernel_scalar(std::int64_t kc, const float* a_panel,
                        const float* b_panel, float* acc) {
  float c[kMR][kNR] = {};
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* a = a_panel + k * kMR;
    const float* b = b_panel + k * kNR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float av = a[r];
      for (std::int64_t j = 0; j < kNR; ++j) c[r][j] += av * b[j];
    }
  }
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t j = 0; j < kNR; ++j) acc[r * kNR + j] = c[r][j];
  }
}

namespace {

// Shared scalar dot-4 tile: integer math is exact, so this is the reference
// every SIMD tier must match bit-for-bit. AU treats the A panel as the
// unsigned (activation) operand, the B panel as signed weights; the `as`
// variant flips the signedness, matching the x86 dot-4 operand rules.
template <typename AT, typename BT>
void ukr_i8_scalar(std::int64_t kg, const void* a_panel, const void* b_panel,
                   std::int32_t* acc) {
  const AT* a = static_cast<const AT*>(a_panel);
  const BT* b = static_cast<const BT*>(b_panel);
  std::int32_t c[kMR][kNR] = {};
  for (std::int64_t g = 0; g < kg; ++g) {
    const AT* ag = a + g * kMR * 4;
    const BT* bg = b + g * kNR * 4;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const AT* ar = ag + r * 4;
      for (std::int64_t j = 0; j < kNR; ++j) {
        const BT* bj = bg + j * 4;
        c[r][j] += static_cast<std::int32_t>(ar[0]) * bj[0] +
                   static_cast<std::int32_t>(ar[1]) * bj[1] +
                   static_cast<std::int32_t>(ar[2]) * bj[2] +
                   static_cast<std::int32_t>(ar[3]) * bj[3];
      }
    }
  }
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t j = 0; j < kNR; ++j) acc[r * kNR + j] = c[r][j];
  }
}

}  // namespace

void microkernel_i8_scalar_au(std::int64_t kg, const void* a_panel,
                              const void* b_panel, std::int32_t* acc) {
  ukr_i8_scalar<std::uint8_t, std::int8_t>(kg, a_panel, b_panel, acc);
}

void microkernel_i8_scalar_as(std::int64_t kg, const void* a_panel,
                              const void* b_panel, std::int32_t* acc) {
  ukr_i8_scalar<std::int8_t, std::uint8_t>(kg, a_panel, b_panel, acc);
}

}  // namespace ramiel::kernels
