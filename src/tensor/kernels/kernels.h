// High-performance CPU kernel backend.
//
// Two dispatch levels sit underneath matmul/gemm/conv2d:
//
//   kScalar — portable reference loops (the seed implementation, kept as
//             the always-correct fallback and the A/B baseline);
//   kVector — packed-panel SGEMM with MC/KC/NC cache blocking and an
//             MR x NR register-tiled microkernel. The microkernel itself
//             is chosen at runtime: an explicit AVX2+FMA kernel on hosts
//             that have it (CPUID probe), a portable scalar microkernel
//             otherwise — so kVector is safe to select everywhere.
//
// Path selection: RAMIEL_KERNEL=scalar|vector (default vector), resolved
// once per process; force_kernel_path() overrides for tests/benchmarks.
//
// Epilogues: bias add and Relu/Sigmoid are folded into the GEMM write-back
// (the kernel-level counterpart of graph-side fusion like fold_batch_norms),
// so a fused Conv+Relu never materializes the pre-activation tensor.
//
// Scratch: pack buffers and im2col panels come from KernelScratch, which
// asks the thread's AllocSink first (the memory planner's per-worker arena,
// see src/mem/) and falls back to the heap — the arena is never required
// for correctness.
#pragma once

#include <cstdint>
#include <optional>

#include "tensor/thread_pool.h"

namespace ramiel::kernels {

enum class Path { kScalar, kVector };

/// The path the backend will use for the next kernel call (env + override
/// resolved; independent of which microkernel the CPU probe picked).
Path active_path();

/// True when the runtime CPUID probe found AVX2+FMA and the explicit
/// vector microkernel is in use (false -> packed driver runs the portable
/// scalar microkernel).
bool vector_microkernel_available();

/// Test/bench hook: pin the path regardless of RAMIEL_KERNEL. Pass
/// std::nullopt to return to env-based selection.
void force_kernel_path(std::optional<Path> path);

/// Activation folded into the kernel write-back.
enum class Activation { kNone, kRelu, kSigmoid };

/// Fused write-back transform: C = act(C_acc + bias). The bias term for
/// element (m, n) is bias[m * bias_stride_m + n * bias_stride_n]; a
/// per-column bias (ONNX Gemm) uses {0, 1}, a per-channel conv bias uses
/// {1, 0}, a scalar bias {0, 0}. bias == nullptr means no bias.
struct Epilogue {
  const float* bias = nullptr;
  std::int64_t bias_stride_m = 0;
  std::int64_t bias_stride_n = 0;
  Activation act = Activation::kNone;
};

/// C[M,N] (row-major, leading dimension ldc) = act(A * B + bias).
/// A is addressed as A[m * rs_a + k * cs_a], B as B[k * rs_b + n * cs_b],
/// so transposed operands are just swapped strides — packing reads each
/// element exactly once either way. Parallelism: splits over cache-blocked
/// row tiles (vector path) or rows (scalar path) via ctx.
void sgemm(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
           std::int64_t rs_a, std::int64_t cs_a, const float* B,
           std::int64_t rs_b, std::int64_t cs_b, float* C, std::int64_t ldc,
           const Epilogue& ep, const OpContext& ctx);

/// Applies `act` in place over n values (used by the conv direct path so a
/// fused activation behaves identically on every path).
void apply_activation(Activation act, float* data, std::int64_t n);

}  // namespace ramiel::kernels
