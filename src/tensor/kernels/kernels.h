// High-performance CPU kernel backend.
//
// Two dispatch levels sit underneath matmul/gemm/conv2d:
//
//   kScalar — portable reference loops (the seed implementation, kept as
//             the always-correct fallback and the A/B baseline);
//   kVector — packed-panel SGEMM with MC/KC/NC cache blocking and an
//             MR x NR register-tiled microkernel. The microkernel itself
//             is chosen at runtime: an explicit AVX2+FMA kernel on hosts
//             that have it (CPUID probe), a portable scalar microkernel
//             otherwise — so kVector is safe to select everywhere.
//
// Path selection: RAMIEL_KERNEL=scalar|vector (default vector), resolved
// once per process; force_kernel_path() overrides for tests/benchmarks.
//
// Epilogues: bias add and Relu/Sigmoid are folded into the GEMM write-back
// (the kernel-level counterpart of graph-side fusion like fold_batch_norms),
// so a fused Conv+Relu never materializes the pre-activation tensor.
//
// Scratch: pack buffers and im2col panels come from KernelScratch, which
// asks the thread's AllocSink first (the memory planner's per-worker arena,
// see src/mem/) and falls back to the heap — the arena is never required
// for correctness.
#pragma once

#include <cstdint>
#include <optional>

#include "support/dtype.h"
#include "tensor/thread_pool.h"

namespace ramiel::kernels {

enum class Path { kScalar, kVector };

/// The path the backend will use for the next kernel call (env + override
/// resolved; independent of which microkernel the CPU probe picked).
Path active_path();

/// True when the runtime CPUID probe found AVX2+FMA and the explicit
/// vector microkernel is in use (false -> packed driver runs the portable
/// scalar microkernel).
bool vector_microkernel_available();

/// Test/bench hook: pin the path regardless of RAMIEL_KERNEL. Pass
/// std::nullopt to return to env-based selection.
void force_kernel_path(std::optional<Path> path);

/// Microkernel tier for the quantized (i8) GEMM. All tiers share one fixed
/// quantization scheme and exact i32 accumulation, so results are
/// bit-identical across them — the tier only changes speed.
enum class I8Kernel { kScalar, kAvx2, kVnni };

/// Tier the next qgemm call will use: kScalar when the kernel path is
/// scalar (RAMIEL_KERNEL=scalar or forced), otherwise the best of
/// {VNNI, AVX2, scalar} the CPU supports, capped by force_i8_kernel().
I8Kernel active_i8_kernel();

/// Test/bench hook: cap the i8 tier (e.g. kAvx2 to measure maddubs on a
/// VNNI host). Requests above what the CPU supports degrade to the best
/// available tier. Pass std::nullopt to return to automatic selection.
void force_i8_kernel(std::optional<I8Kernel> k);

const char* i8_kernel_name(I8Kernel k);

/// Activation folded into the kernel write-back.
enum class Activation { kNone, kRelu, kSigmoid };

/// Fused write-back transform: C = act(C_acc + bias). The bias term for
/// element (m, n) is bias[m * bias_stride_m + n * bias_stride_n]; a
/// per-column bias (ONNX Gemm) uses {0, 1}, a per-channel conv bias uses
/// {1, 0}, a scalar bias {0, 0}. bias == nullptr means no bias.
struct Epilogue {
  const float* bias = nullptr;
  std::int64_t bias_stride_m = 0;
  std::int64_t bias_stride_n = 0;
  Activation act = Activation::kNone;
};

/// C[M,N] (row-major, leading dimension ldc) = act(A * B + bias).
/// A is addressed as A[m * rs_a + k * cs_a], B as B[k * rs_b + n * cs_b],
/// so transposed operands are just swapped strides — packing reads each
/// element exactly once either way. Parallelism: splits over cache-blocked
/// row tiles (vector path) or rows (scalar path) via ctx.
void sgemm(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
           std::int64_t rs_a, std::int64_t cs_a, const float* B,
           std::int64_t rs_b, std::int64_t cs_b, float* C, std::int64_t ldc,
           const Epilogue& ep, const OpContext& ctx);

/// Storage-dtype-polymorphic sgemm: A/B may be stored f32/f16/bf16 (the
/// panel packers convert to f32 on read), C may be f32/f16/bf16 (the
/// write-back epilogue converts after the fp32 accumulation finishes, so
/// precision of the *computation* never depends on storage width). i8
/// operands go through qgemm instead.
void sgemm_dt(std::int64_t M, std::int64_t N, std::int64_t K, const void* A,
              DType a_dtype, std::int64_t rs_a, std::int64_t cs_a,
              const void* B, DType b_dtype, std::int64_t rs_b,
              std::int64_t cs_b, void* C, DType c_dtype, std::int64_t ldc,
              const Epilogue& ep, const OpContext& ctx);

/// Quantized GEMM: exactly one operand is i8 (statically quantized weights,
/// symmetric per output channel), the other is f32/f16/bf16 activations
/// quantized dynamically per call to u8 in [1,127] around zero point 64 —
/// one fixed scheme shared by every microkernel tier so outputs are
/// bit-identical across dispatch. Accumulation is exact i32; the merge step
/// dequantizes and fuses bias/activation:
///
///   C[m,n] = act(s_dyn * ch_scales[ch] * (acc[m,n] - 64 * ch_sums[ch])
///              + bias)
///
/// where ch = m when A is the i8 operand (conv: per-row = per-output-
/// channel) and ch = n when B is (gemm/matmul: per-column). ch_sums are the
/// per-channel sums of the quantized weights (QuantMeta::sums).
///
/// `dyn_absmax`: absmax of the dynamic operand. Pass a calibrated value to
/// skip the per-call scan (values beyond it saturate at the u8 rails), or
/// a negative value to have qgemm measure it. An absmax of 0 degenerates to
/// C = act(bias).
void qgemm(std::int64_t M, std::int64_t N, std::int64_t K, const void* A,
           DType a_dtype, std::int64_t rs_a, std::int64_t cs_a, const void* B,
           DType b_dtype, std::int64_t rs_b, std::int64_t cs_b,
           const float* ch_scales, const std::int32_t* ch_sums, void* C,
           DType c_dtype, std::int64_t ldc, float dyn_absmax,
           const Epilogue& ep, const OpContext& ctx);

/// absmax over n stored elements (f32/f16/bf16) — the dynamic-quantization
/// range scan, shared by the ops layer and the calibration tool.
float absmax(const void* data, DType dt, std::size_t n);

/// Bulk widen/narrow between n contiguous stored elements and f32.
/// Semantics match support's convert_storage_to_f32/convert_f32_to_storage
/// (round-to-nearest-even on narrowing) and kF32 is a plain copy; the f16
/// case runs the F16C converters when the host has them — bit-exact either
/// way, so the choice never changes results. These are what the pack paths
/// and write-back narrowing use for contiguous rows.
void rows_to_f32(const void* src, DType dt, float* dst, std::size_t n);
void rows_from_f32(const float* src, void* dst, DType dt, std::size_t n);

/// Applies `act` in place over n values (used by the conv direct path so a
/// fused activation behaves identically on every path).
void apply_activation(Activation act, float* data, std::int64_t n);

}  // namespace ramiel::kernels
