// Packed-panel SGEMM driver: the single matrix-product engine behind
// matmul, gemm and the conv2d implicit-GEMM lowering.
//
// Vector path (BLIS-style):
//
//   for each NC column stripe:
//     for each KC depth block:
//       pack B[kc x nc] into NR-wide k-major panels   (parallel over panels)
//       for each MC row tile:                         (parallel over tiles)
//         pack A[mc x kc] into MR-wide k-major panels (per-lane scratch)
//         for each NR panel x MR subtile: microkernel -> merge into C
//
// The merge step owns accumulation across KC blocks and the fused epilogue
// (bias + activation on the last block), so the microkernel stays a pure
// register-tile FMA loop. Intra-op threads split over cache-blocked row
// tiles — each lane packs its own A tiles into its own scratch slice, and
// the two dispatch_parallel_for calls per (stripe, block) act as barriers
// so no lane reads a B panel that is still being packed.
//
// Storage dtypes (sgemm_dt): f16/bf16 operands are widened to f32 inside
// the panel packers — the microkernel and all accumulation stay fp32 — and
// a non-f32 C is staged per NC stripe in an fp32 scratch strip that is
// narrowed once after the stripe's last KC block, so rounding to storage
// precision happens exactly once per output element.
#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "support/check.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/microkernel.h"
#include "tensor/kernels/scratch.h"

namespace ramiel::kernels {
namespace {

struct GemmMetrics {
  obs::Counter* vector = obs::registry().counter(
      "ramiel_kernel_gemm_vector_total",
      "SGEMM calls executed by the packed/blocked vector path");
  obs::Counter* scalar = obs::registry().counter(
      "ramiel_kernel_gemm_scalar_total",
      "SGEMM calls executed by the scalar reference path");
  obs::Counter* lowp = obs::registry().counter(
      "ramiel_kernel_gemm_lowp_total",
      "SGEMM calls with at least one f16/bf16 storage operand or output");
};

GemmMetrics& gemm_metrics() {
  static GemmMetrics* m = new GemmMetrics();
  return *m;
}

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

inline float activate(Activation act, float v) {
  switch (act) {
    case Activation::kNone:
      return v;
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
  }
  return v;
}

inline float bias_at(const Epilogue& ep, std::int64_t m, std::int64_t n) {
  return ep.bias == nullptr
             ? 0.0f
             : ep.bias[m * ep.bias_stride_m + n * ep.bias_stride_n];
}

// Storage loaders: widen one stored element to f32. Templating the packers
// on these keeps the f32 instantiation identical to the pre-dtype code (the
// load inlines to a plain float read).
struct LoadF32 {
  static float at(const void* p, std::int64_t i) {
    return static_cast<const float*>(p)[i];
  }
};
struct LoadF16 {
  static float at(const void* p, std::int64_t i) {
    return f16_to_f32(static_cast<const std::uint16_t*>(p)[i]);
  }
};
struct LoadBF16 {
  static float at(const void* p, std::int64_t i) {
    return bf16_to_f32(static_cast<const std::uint16_t*>(p)[i]);
  }
};

// ---------------------------------------------------------------------------
// Scalar reference path: the seed kernel plus the fused epilogue. Rows are
// the parallel axis; k-outer/n-inner keeps the row accumulator streaming.
// ---------------------------------------------------------------------------

void sgemm_scalar(std::int64_t M, std::int64_t N, std::int64_t K,
                  const float* A, std::int64_t rs_a, std::int64_t cs_a,
                  const float* B, std::int64_t rs_b, std::int64_t cs_b,
                  float* C, std::int64_t ldc, const Epilogue& ep,
                  const OpContext& ctx) {
  dispatch_parallel_for(ctx, M, 2 * K * N, [&](std::int64_t lo,
                                               std::int64_t hi) {
    for (std::int64_t m = lo; m < hi; ++m) {
      float* po = C + m * ldc;
      for (std::int64_t n = 0; n < N; ++n) po[n] = bias_at(ep, m, n);
      for (std::int64_t k = 0; k < K; ++k) {
        const float av = A[m * rs_a + k * cs_a];
        const float* pb = B + k * rs_b;
        for (std::int64_t n = 0; n < N; ++n) po[n] += av * pb[n * cs_b];
      }
      if (ep.act != Activation::kNone) {
        for (std::int64_t n = 0; n < N; ++n) po[n] = activate(ep.act, po[n]);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Packed/blocked vector path
// ---------------------------------------------------------------------------

/// Packs A[m0 .. m0+mc, k0 .. k0+kc] into MR-wide k-major panels, zero-
/// padding the ragged last row tile so the microkernel never branches.
template <typename Load>
void pack_a(float* dst, const void* A, std::int64_t rs_a, std::int64_t cs_a,
            std::int64_t m0, std::int64_t mc, std::int64_t k0,
            std::int64_t kc) {
  const std::int64_t tiles = ceil_div(mc, kMR);
  for (std::int64_t i = 0; i < tiles; ++i) {
    float* tile = dst + i * kMR * kc;
    for (std::int64_t k = 0; k < kc; ++k) {
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t row = i * kMR + r;
        tile[k * kMR + r] =
            row < mc ? Load::at(A, (m0 + row) * rs_a + (k0 + k) * cs_a)
                     : 0.0f;
      }
    }
  }
}

/// Packs one NR-wide column panel of B[k0 .. k0+kc, n0 .. n0+nvalid).
template <typename Load>
void pack_b_panel(float* dst, const void* B, std::int64_t rs_b,
                  std::int64_t cs_b, std::int64_t k0, std::int64_t kc,
                  std::int64_t n0, std::int64_t nvalid) {
  for (std::int64_t k = 0; k < kc; ++k) {
    const std::int64_t src = (k0 + k) * rs_b + n0 * cs_b;
    float* row = dst + k * kNR;
    for (std::int64_t j = 0; j < kNR; ++j) {
      row[j] = j < nvalid ? Load::at(B, src + j * cs_b) : 0.0f;
    }
  }
}

// Contiguous-row fast packers for storage dtypes: when the k axis is unit-
// stride, each source row is widened once with the bulk converters (F16C
// for f16 when the host has it) and scattered from an f32 row buffer —
// instead of one branchy scalar conversion call per element, which costs
// more than the FMA inner loop at GEMM-256 sizes.
template <DType DT>
void pack_a_rows(float* dst, const void* A, std::int64_t rs_a,
                 std::int64_t /*cs_a*/, std::int64_t m0, std::int64_t mc,
                 std::int64_t k0, std::int64_t kc) {
  constexpr std::size_t kEsz = dtype_size(DT);
  const auto* base = static_cast<const std::uint8_t*>(A);
  alignas(64) float rowbuf[kKC];
  const std::int64_t tiles = ceil_div(mc, kMR);
  for (std::int64_t i = 0; i < tiles; ++i) {
    float* tile = dst + i * kMR * kc;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const std::int64_t row = i * kMR + r;
      if (row < mc) {
        rows_to_f32(base + static_cast<std::size_t>((m0 + row) * rs_a + k0) *
                               kEsz,
                    DT, rowbuf, static_cast<std::size_t>(kc));
        for (std::int64_t k = 0; k < kc; ++k) tile[k * kMR + r] = rowbuf[k];
      } else {
        for (std::int64_t k = 0; k < kc; ++k) tile[k * kMR + r] = 0.0f;
      }
    }
  }
}

template <DType DT>
void pack_b_rows(float* dst, const void* B, std::int64_t rs_b,
                 std::int64_t /*cs_b*/, std::int64_t k0, std::int64_t kc,
                 std::int64_t n0, std::int64_t nvalid) {
  constexpr std::size_t kEsz = dtype_size(DT);
  const auto* base = static_cast<const std::uint8_t*>(B);
  const std::int64_t cols = std::min<std::int64_t>(nvalid, kNR);
  for (std::int64_t k = 0; k < kc; ++k) {
    float* row = dst + k * kNR;
    rows_to_f32(base + static_cast<std::size_t>((k0 + k) * rs_b + n0) * kEsz,
                DT, row, static_cast<std::size_t>(cols));
    for (std::int64_t j = cols; j < kNR; ++j) row[j] = 0.0f;
  }
}

using PackAFn = void (*)(float*, const void*, std::int64_t, std::int64_t,
                         std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t);
using PackBFn = void (*)(float*, const void*, std::int64_t, std::int64_t,
                         std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t);

PackAFn pack_a_for(DType dt, std::int64_t cs_a) {
  switch (dt) {
    case DType::kF32: return &pack_a<LoadF32>;
    case DType::kF16:
      return cs_a == 1 ? &pack_a_rows<DType::kF16> : &pack_a<LoadF16>;
    case DType::kBF16:
      return cs_a == 1 ? &pack_a_rows<DType::kBF16> : &pack_a<LoadBF16>;
    case DType::kI8: break;
  }
  RAMIEL_CHECK(false, "sgemm: i8 operands go through qgemm");
  return nullptr;
}

PackBFn pack_b_for(DType dt, std::int64_t cs_b) {
  switch (dt) {
    case DType::kF32: return &pack_b_panel<LoadF32>;
    case DType::kF16:
      return cs_b == 1 ? &pack_b_rows<DType::kF16> : &pack_b_panel<LoadF16>;
    case DType::kBF16:
      return cs_b == 1 ? &pack_b_rows<DType::kBF16> : &pack_b_panel<LoadBF16>;
    case DType::kI8: break;
  }
  RAMIEL_CHECK(false, "sgemm: i8 operands go through qgemm");
  return nullptr;
}

/// Folds one microkernel tile into C: accumulate across KC blocks, apply
/// the epilogue on the last block, mask the M/N edges. `bias_n0` is the
/// *global* output column of dst column 0 — it differs from n0 when C is a
/// staged stripe addressed with stripe-local columns.
void merge_tile(float* C, std::int64_t ldc, std::int64_t m0, std::int64_t n0,
                std::int64_t rows, std::int64_t cols, const float* acc,
                bool first, bool last, const Epilogue& ep,
                std::int64_t bias_n0) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* dst = C + (m0 + r) * ldc + n0;
    const float* a = acc + r * kNR;
    if (!last) {
      if (first) {
        for (std::int64_t j = 0; j < cols; ++j) dst[j] = a[j];
      } else {
        for (std::int64_t j = 0; j < cols; ++j) dst[j] += a[j];
      }
      continue;
    }
    for (std::int64_t j = 0; j < cols; ++j) {
      float v = (first ? 0.0f : dst[j]) + a[j];
      v += bias_at(ep, m0 + r, bias_n0 + j);
      dst[j] = activate(ep.act, v);
    }
  }
}

void sgemm_blocked(std::int64_t M, std::int64_t N, std::int64_t K,
                   const void* A, DType a_dt, std::int64_t rs_a,
                   std::int64_t cs_a, const void* B, DType b_dt,
                   std::int64_t rs_b, std::int64_t cs_b, void* C, DType c_dt,
                   std::int64_t ldc, const Epilogue& ep, const OpContext& ctx,
                   MicroKernelFn ukr) {
  const PackAFn do_pack_a = pack_a_for(a_dt, cs_a);
  const PackBFn do_pack_b = pack_b_for(b_dt, cs_b);
  const bool stage_c = c_dt != DType::kF32;

  const std::int64_t mtiles_total = ceil_div(M, kMC);
  const std::int64_t lanes =
      std::max<std::int64_t>(1, std::min<std::int64_t>(
                                    std::max(1, ctx.threads), mtiles_total));

  // One scratch blob: the packed-B stripe, one packed-A slice per lane,
  // then (only when narrowing C) an fp32 staging strip for one NC stripe.
  const std::int64_t kc_max = std::min(K, kKC);
  const std::int64_t nc_max = std::min(N, kNC);
  const std::int64_t bp_floats = kc_max * ceil_div(nc_max, kNR) * kNR;
  const std::int64_t ap_floats = std::min(M, kMC) <= 0
                                     ? 0
                                     : ceil_div(std::min(M, kMC), kMR) * kMR *
                                           kc_max;
  const std::int64_t stage_floats = stage_c ? M * nc_max : 0;
  KernelScratch scratch(
      static_cast<std::size_t>(bp_floats + lanes * ap_floats + stage_floats));
  float* const bp = scratch.data();
  float* const ap0 = bp + bp_floats;
  float* const stage = ap0 + lanes * ap_floats;

  for (std::int64_t n0 = 0; n0 < N; n0 += kNC) {
    const std::int64_t nc = std::min(kNC, N - n0);
    const std::int64_t npan = ceil_div(nc, kNR);
    // Stripe-local output view: non-f32 C accumulates in the fp32 stage and
    // is narrowed once after the stripe's last KC block.
    float* const cdst = stage_c ? stage : static_cast<float*>(C) + n0;
    const std::int64_t ldc_dst = stage_c ? nc : ldc;
    for (std::int64_t k0 = 0; k0 < K; k0 += kKC) {
      const std::int64_t kc = std::min(kKC, K - k0);
      const bool first = k0 == 0;
      const bool last = k0 + kc == K;

      dispatch_parallel_for(
          ctx, npan, 2 * kc * kNR, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t j = lo; j < hi; ++j) {
              do_pack_b(bp + j * kc * kNR, B, rs_b, cs_b, k0, kc, n0 + j * kNR,
                        nc - j * kNR);
            }
          });

      // Lanes get contiguous tile ranges; each lane owns one A-pack slice.
      const std::int64_t parts = std::min(lanes, mtiles_total);
      const std::int64_t part_cost =
          2 * ceil_div(mtiles_total, parts) * kMC * kc * nc;
      dispatch_parallel_for(
          ctx, parts, part_cost, [&](std::int64_t plo, std::int64_t phi) {
            alignas(64) float acc[kMR * kNR];
            for (std::int64_t p = plo; p < phi; ++p) {
              float* ap = ap0 + p * ap_floats;
              const std::int64_t t_begin = p * mtiles_total / parts;
              const std::int64_t t_end = (p + 1) * mtiles_total / parts;
              for (std::int64_t t = t_begin; t < t_end; ++t) {
                const std::int64_t m0 = t * kMC;
                const std::int64_t mc = std::min(kMC, M - m0);
                const std::int64_t subtiles = ceil_div(mc, kMR);
                do_pack_a(ap, A, rs_a, cs_a, m0, mc, k0, kc);
                for (std::int64_t j = 0; j < npan; ++j) {
                  const float* bpj = bp + j * kc * kNR;
                  const std::int64_t cols =
                      std::min(kNR, nc - j * kNR);
                  for (std::int64_t i = 0; i < subtiles; ++i) {
                    ukr(kc, ap + i * kMR * kc, bpj, acc);
                    merge_tile(cdst, ldc_dst, m0 + i * kMR, j * kNR,
                               std::min(kMR, mc - i * kMR), cols, acc, first,
                               last, ep, n0 + j * kNR);
                  }
                }
              }
            }
          });
    }
    if (stage_c) {
      const std::size_t esz = dtype_size(c_dt);
      auto* cb = static_cast<std::uint8_t*>(C);
      dispatch_parallel_for(ctx, M, 4 * nc, [&](std::int64_t lo,
                                                std::int64_t hi) {
        for (std::int64_t m = lo; m < hi; ++m) {
          rows_from_f32(stage + m * nc, cb + (m * ldc + n0) * esz, c_dt,
                        static_cast<std::size_t>(nc));
        }
      });
    }
  }
}

// Scalar-path fallback for storage dtypes: densify the strided operands to
// row-major fp32 once, run the reference loops, narrow C at the end. The
// scalar path is a correctness baseline, not a speed path, so the extra
// copies are fine.
void sgemm_scalar_dt(std::int64_t M, std::int64_t N, std::int64_t K,
                     const void* A, DType a_dt, std::int64_t rs_a,
                     std::int64_t cs_a, const void* B, DType b_dt,
                     std::int64_t rs_b, std::int64_t cs_b, void* C, DType c_dt,
                     std::int64_t ldc, const Epilogue& ep,
                     const OpContext& ctx) {
  std::vector<float> a_f32, b_f32, c_f32;
  const float* ap = static_cast<const float*>(A);
  const float* bp = static_cast<const float*>(B);
  std::int64_t ars = rs_a, acs = cs_a, brs = rs_b, bcs = cs_b;
  if (a_dt != DType::kF32) {
    a_f32.resize(static_cast<std::size_t>(M * K));
    for (std::int64_t m = 0; m < M; ++m) {
      for (std::int64_t k = 0; k < K; ++k) {
        a_f32[m * K + k] = a_dt == DType::kF16
                               ? LoadF16::at(A, m * rs_a + k * cs_a)
                               : LoadBF16::at(A, m * rs_a + k * cs_a);
      }
    }
    ap = a_f32.data();
    ars = K;
    acs = 1;
  }
  if (b_dt != DType::kF32) {
    b_f32.resize(static_cast<std::size_t>(K * N));
    for (std::int64_t k = 0; k < K; ++k) {
      for (std::int64_t n = 0; n < N; ++n) {
        b_f32[k * N + n] = b_dt == DType::kF16
                               ? LoadF16::at(B, k * rs_b + n * cs_b)
                               : LoadBF16::at(B, k * rs_b + n * cs_b);
      }
    }
    bp = b_f32.data();
    brs = N;
    bcs = 1;
  }
  float* cp = static_cast<float*>(C);
  std::int64_t ldc_c = ldc;
  if (c_dt != DType::kF32) {
    c_f32.resize(static_cast<std::size_t>(M * N));
    cp = c_f32.data();
    ldc_c = N;
  }
  sgemm_scalar(M, N, K, ap, ars, acs, bp, brs, bcs, cp, ldc_c, ep, ctx);
  if (c_dt != DType::kF32) {
    const std::size_t esz = dtype_size(c_dt);
    auto* cb = static_cast<std::uint8_t*>(C);
    for (std::int64_t m = 0; m < M; ++m) {
      convert_f32_to_storage(cp + m * N, cb + m * ldc * esz, c_dt,
                             static_cast<std::size_t>(N));
    }
  }
}

}  // namespace

void apply_activation(Activation act, float* data, std::int64_t n) {
  if (act == Activation::kNone) return;
  for (std::int64_t i = 0; i < n; ++i) data[i] = activate(act, data[i]);
}

float absmax(const void* data, DType dt, std::size_t n) {
  RAMIEL_CHECK(dt != DType::kI8,
               "absmax: i8 tensors are already quantized (no dynamic range "
               "scan applies)");
  const auto scan_f32 = [](const float* p, std::size_t len) {
    const LowpRowKernels rk =
        vector_microkernel_available() ? avx2_lowp_row_kernels()
                                       : LowpRowKernels{};
    if (rk.absmax_f32 != nullptr) {
      return rk.absmax_f32(p, static_cast<std::int64_t>(len));
    }
    float m = 0.0f;
    for (std::size_t i = 0; i < len; ++i) m = std::max(m, std::fabs(p[i]));
    return m;
  };
  if (dt == DType::kF32) {
    return scan_f32(static_cast<const float*>(data), n);
  }
  // Half formats: widen in chunks and scan the f32 chunk — the bulk
  // converters beat a per-element conversion call even without SIMD.
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::size_t esz = dtype_size(dt);
  alignas(64) float buf[kKC];
  float m = 0.0f;
  for (std::size_t i = 0; i < n; i += kKC) {
    const std::size_t chunk = std::min<std::size_t>(kKC, n - i);
    rows_to_f32(p + i * esz, dt, buf, chunk);
    m = std::max(m, scan_f32(buf, chunk));
  }
  return m;
}

void sgemm_dt(std::int64_t M, std::int64_t N, std::int64_t K, const void* A,
              DType a_dtype, std::int64_t rs_a, std::int64_t cs_a,
              const void* B, DType b_dtype, std::int64_t rs_b,
              std::int64_t cs_b, void* C, DType c_dtype, std::int64_t ldc,
              const Epilogue& ep, const OpContext& ctx) {
  RAMIEL_CHECK(a_dtype != DType::kI8 && b_dtype != DType::kI8 &&
                   c_dtype != DType::kI8,
               "sgemm_dt: i8 operands go through qgemm");
  if (M <= 0 || N <= 0) return;
  if (a_dtype != DType::kF32 || b_dtype != DType::kF32 ||
      c_dtype != DType::kF32) {
    gemm_metrics().lowp->inc();
  }
  if (K <= 0) {
    // Degenerate product: C = act(bias).
    if (c_dtype == DType::kF32) {
      auto* cf = static_cast<float*>(C);
      for (std::int64_t m = 0; m < M; ++m) {
        for (std::int64_t n = 0; n < N; ++n) {
          cf[m * ldc + n] = activate(ep.act, bias_at(ep, m, n));
        }
      }
    } else {
      std::vector<float> row(static_cast<std::size_t>(N));
      const std::size_t esz = dtype_size(c_dtype);
      auto* cb = static_cast<std::uint8_t*>(C);
      for (std::int64_t m = 0; m < M; ++m) {
        for (std::int64_t n = 0; n < N; ++n) {
          row[n] = activate(ep.act, bias_at(ep, m, n));
        }
        convert_f32_to_storage(row.data(), cb + m * ldc * esz, c_dtype,
                               static_cast<std::size_t>(N));
      }
    }
    return;
  }
  if (active_path() == Path::kVector) {
    gemm_metrics().vector->inc();
    const MicroKernelFn ukr = vector_microkernel_available()
                                  ? avx2_microkernel()
                                  : &microkernel_scalar;
    sgemm_blocked(M, N, K, A, a_dtype, rs_a, cs_a, B, b_dtype, rs_b, cs_b, C,
                  c_dtype, ldc, ep, ctx, ukr);
  } else {
    gemm_metrics().scalar->inc();
    if (a_dtype == DType::kF32 && b_dtype == DType::kF32 &&
        c_dtype == DType::kF32) {
      sgemm_scalar(M, N, K, static_cast<const float*>(A), rs_a, cs_a,
                   static_cast<const float*>(B), rs_b, cs_b,
                   static_cast<float*>(C), ldc, ep, ctx);
    } else {
      sgemm_scalar_dt(M, N, K, A, a_dtype, rs_a, cs_a, B, b_dtype, rs_b, cs_b,
                      C, c_dtype, ldc, ep, ctx);
    }
  }
}

void sgemm(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
           std::int64_t rs_a, std::int64_t cs_a, const float* B,
           std::int64_t rs_b, std::int64_t cs_b, float* C, std::int64_t ldc,
           const Epilogue& ep, const OpContext& ctx) {
  sgemm_dt(M, N, K, A, DType::kF32, rs_a, cs_a, B, DType::kF32, rs_b, cs_b, C,
           DType::kF32, ldc, ep, ctx);
}

}  // namespace ramiel::kernels
