// Packed-panel SGEMM driver: the single matrix-product engine behind
// matmul, gemm and the conv2d implicit-GEMM lowering.
//
// Vector path (BLIS-style):
//
//   for each NC column stripe:
//     for each KC depth block:
//       pack B[kc x nc] into NR-wide k-major panels   (parallel over panels)
//       for each MC row tile:                         (parallel over tiles)
//         pack A[mc x kc] into MR-wide k-major panels (per-lane scratch)
//         for each NR panel x MR subtile: microkernel -> merge into C
//
// The merge step owns accumulation across KC blocks and the fused epilogue
// (bias + activation on the last block), so the microkernel stays a pure
// register-tile FMA loop. Intra-op threads split over cache-blocked row
// tiles — each lane packs its own A tiles into its own scratch slice, and
// the two dispatch_parallel_for calls per (stripe, block) act as barriers
// so no lane reads a B panel that is still being packed.
#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "support/check.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/microkernel.h"
#include "tensor/kernels/scratch.h"

namespace ramiel::kernels {
namespace {

struct GemmMetrics {
  obs::Counter* vector = obs::registry().counter(
      "ramiel_kernel_gemm_vector_total",
      "SGEMM calls executed by the packed/blocked vector path");
  obs::Counter* scalar = obs::registry().counter(
      "ramiel_kernel_gemm_scalar_total",
      "SGEMM calls executed by the scalar reference path");
};

GemmMetrics& gemm_metrics() {
  static GemmMetrics* m = new GemmMetrics();
  return *m;
}

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

inline float activate(Activation act, float v) {
  switch (act) {
    case Activation::kNone:
      return v;
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
  }
  return v;
}

inline float bias_at(const Epilogue& ep, std::int64_t m, std::int64_t n) {
  return ep.bias == nullptr
             ? 0.0f
             : ep.bias[m * ep.bias_stride_m + n * ep.bias_stride_n];
}

// ---------------------------------------------------------------------------
// Scalar reference path: the seed kernel plus the fused epilogue. Rows are
// the parallel axis; k-outer/n-inner keeps the row accumulator streaming.
// ---------------------------------------------------------------------------

void sgemm_scalar(std::int64_t M, std::int64_t N, std::int64_t K,
                  const float* A, std::int64_t rs_a, std::int64_t cs_a,
                  const float* B, std::int64_t rs_b, std::int64_t cs_b,
                  float* C, std::int64_t ldc, const Epilogue& ep,
                  const OpContext& ctx) {
  dispatch_parallel_for(ctx, M, 2 * K * N, [&](std::int64_t lo,
                                               std::int64_t hi) {
    for (std::int64_t m = lo; m < hi; ++m) {
      float* po = C + m * ldc;
      for (std::int64_t n = 0; n < N; ++n) po[n] = bias_at(ep, m, n);
      for (std::int64_t k = 0; k < K; ++k) {
        const float av = A[m * rs_a + k * cs_a];
        const float* pb = B + k * rs_b;
        for (std::int64_t n = 0; n < N; ++n) po[n] += av * pb[n * cs_b];
      }
      if (ep.act != Activation::kNone) {
        for (std::int64_t n = 0; n < N; ++n) po[n] = activate(ep.act, po[n]);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Packed/blocked vector path
// ---------------------------------------------------------------------------

/// Packs A[m0 .. m0+mc, k0 .. k0+kc] into MR-wide k-major panels, zero-
/// padding the ragged last row tile so the microkernel never branches.
void pack_a(float* dst, const float* A, std::int64_t rs_a, std::int64_t cs_a,
            std::int64_t m0, std::int64_t mc, std::int64_t k0,
            std::int64_t kc) {
  const std::int64_t tiles = ceil_div(mc, kMR);
  for (std::int64_t i = 0; i < tiles; ++i) {
    float* tile = dst + i * kMR * kc;
    for (std::int64_t k = 0; k < kc; ++k) {
      for (std::int64_t r = 0; r < kMR; ++r) {
        const std::int64_t row = i * kMR + r;
        tile[k * kMR + r] =
            row < mc ? A[(m0 + row) * rs_a + (k0 + k) * cs_a] : 0.0f;
      }
    }
  }
}

/// Packs one NR-wide column panel of B[k0 .. k0+kc, n0 .. n0+nvalid).
void pack_b_panel(float* dst, const float* B, std::int64_t rs_b,
                  std::int64_t cs_b, std::int64_t k0, std::int64_t kc,
                  std::int64_t n0, std::int64_t nvalid) {
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* src = B + (k0 + k) * rs_b + n0 * cs_b;
    float* row = dst + k * kNR;
    for (std::int64_t j = 0; j < kNR; ++j) {
      row[j] = j < nvalid ? src[j * cs_b] : 0.0f;
    }
  }
}

/// Folds one microkernel tile into C: accumulate across KC blocks, apply
/// the epilogue on the last block, mask the M/N edges.
void merge_tile(float* C, std::int64_t ldc, std::int64_t m0, std::int64_t n0,
                std::int64_t rows, std::int64_t cols, const float* acc,
                bool first, bool last, const Epilogue& ep) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* dst = C + (m0 + r) * ldc + n0;
    const float* a = acc + r * kNR;
    if (!last) {
      if (first) {
        for (std::int64_t j = 0; j < cols; ++j) dst[j] = a[j];
      } else {
        for (std::int64_t j = 0; j < cols; ++j) dst[j] += a[j];
      }
      continue;
    }
    for (std::int64_t j = 0; j < cols; ++j) {
      float v = (first ? 0.0f : dst[j]) + a[j];
      v += bias_at(ep, m0 + r, n0 + j);
      dst[j] = activate(ep.act, v);
    }
  }
}

void sgemm_blocked(std::int64_t M, std::int64_t N, std::int64_t K,
                   const float* A, std::int64_t rs_a, std::int64_t cs_a,
                   const float* B, std::int64_t rs_b, std::int64_t cs_b,
                   float* C, std::int64_t ldc, const Epilogue& ep,
                   const OpContext& ctx, MicroKernelFn ukr) {
  const std::int64_t mtiles_total = ceil_div(M, kMC);
  const std::int64_t lanes =
      std::max<std::int64_t>(1, std::min<std::int64_t>(
                                    std::max(1, ctx.threads), mtiles_total));

  // One scratch blob: the packed-B stripe, then one packed-A slice per lane.
  const std::int64_t kc_max = std::min(K, kKC);
  const std::int64_t nc_max = std::min(N, kNC);
  const std::int64_t bp_floats = kc_max * ceil_div(nc_max, kNR) * kNR;
  const std::int64_t ap_floats = std::min(M, kMC) <= 0
                                     ? 0
                                     : ceil_div(std::min(M, kMC), kMR) * kMR *
                                           kc_max;
  KernelScratch scratch(
      static_cast<std::size_t>(bp_floats + lanes * ap_floats));
  float* const bp = scratch.data();
  float* const ap0 = bp + bp_floats;

  for (std::int64_t n0 = 0; n0 < N; n0 += kNC) {
    const std::int64_t nc = std::min(kNC, N - n0);
    const std::int64_t npan = ceil_div(nc, kNR);
    for (std::int64_t k0 = 0; k0 < K; k0 += kKC) {
      const std::int64_t kc = std::min(kKC, K - k0);
      const bool first = k0 == 0;
      const bool last = k0 + kc == K;

      dispatch_parallel_for(
          ctx, npan, 2 * kc * kNR, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t j = lo; j < hi; ++j) {
              pack_b_panel(bp + j * kc * kNR, B, rs_b, cs_b, k0, kc,
                           n0 + j * kNR, nc - j * kNR);
            }
          });

      // Lanes get contiguous tile ranges; each lane owns one A-pack slice.
      const std::int64_t parts = std::min(lanes, mtiles_total);
      const std::int64_t part_cost =
          2 * ceil_div(mtiles_total, parts) * kMC * kc * nc;
      dispatch_parallel_for(
          ctx, parts, part_cost, [&](std::int64_t plo, std::int64_t phi) {
            alignas(64) float acc[kMR * kNR];
            for (std::int64_t p = plo; p < phi; ++p) {
              float* ap = ap0 + p * ap_floats;
              const std::int64_t t_begin = p * mtiles_total / parts;
              const std::int64_t t_end = (p + 1) * mtiles_total / parts;
              for (std::int64_t t = t_begin; t < t_end; ++t) {
                const std::int64_t m0 = t * kMC;
                const std::int64_t mc = std::min(kMC, M - m0);
                const std::int64_t subtiles = ceil_div(mc, kMR);
                pack_a(ap, A, rs_a, cs_a, m0, mc, k0, kc);
                for (std::int64_t j = 0; j < npan; ++j) {
                  const float* bpj = bp + j * kc * kNR;
                  const std::int64_t cols =
                      std::min(kNR, nc - j * kNR);
                  for (std::int64_t i = 0; i < subtiles; ++i) {
                    ukr(kc, ap + i * kMR * kc, bpj, acc);
                    merge_tile(C, ldc, m0 + i * kMR, n0 + j * kNR,
                               std::min(kMR, mc - i * kMR), cols, acc, first,
                               last, ep);
                  }
                }
              }
            }
          });
    }
  }
}

}  // namespace

void apply_activation(Activation act, float* data, std::int64_t n) {
  if (act == Activation::kNone) return;
  for (std::int64_t i = 0; i < n; ++i) data[i] = activate(act, data[i]);
}

void sgemm(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
           std::int64_t rs_a, std::int64_t cs_a, const float* B,
           std::int64_t rs_b, std::int64_t cs_b, float* C, std::int64_t ldc,
           const Epilogue& ep, const OpContext& ctx) {
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    // Degenerate product: C = act(bias).
    for (std::int64_t m = 0; m < M; ++m) {
      for (std::int64_t n = 0; n < N; ++n) {
        C[m * ldc + n] = activate(ep.act, bias_at(ep, m, n));
      }
    }
    return;
  }
  if (active_path() == Path::kVector) {
    gemm_metrics().vector->inc();
    const MicroKernelFn ukr = vector_microkernel_available()
                                  ? avx2_microkernel()
                                  : &microkernel_scalar;
    sgemm_blocked(M, N, K, A, rs_a, cs_a, B, rs_b, cs_b, C, ldc, ep, ctx,
                  ukr);
  } else {
    gemm_metrics().scalar->inc();
    sgemm_scalar(M, N, K, A, rs_a, cs_a, B, rs_b, cs_b, C, ldc, ep, ctx);
  }
}

}  // namespace ramiel::kernels
