// F16C bulk f16<->f32 row converters (vcvtph2ps / vcvtps2ph).
//
// The scalar f16 conversions in support/dtype.cc are correct but branchy
// (subnormal loops, NaN quieting) and cost ~1 ms per GEMM-256 when the pack
// paths widen every element through them. The hardware instructions compute
// the same function: f16 -> f32 is an exact embedding, and vcvtps2ph with
// an explicit round-to-nearest-even override matches the software RNE
// narrowing bit-for-bit, subnormals included. This TU is compiled with
// -mavx -mf16c (see src/tensor/CMakeLists.txt) and only reached after the
// dispatcher's CPUID probe for f16c.
#include "tensor/kernels/microkernel.h"

#if defined(__x86_64__) && defined(__AVX__) && defined(__F16C__)

#include <immintrin.h>

#include <cstring>

namespace ramiel::kernels {
namespace {

void f16_row_to_f32(const std::uint16_t* src, float* dst, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  if (i < n) {
    alignas(16) std::uint16_t hb[8] = {};
    alignas(32) float fb[8];
    std::memcpy(hb, src + i, static_cast<std::size_t>(n - i) * sizeof(*src));
    _mm256_store_ps(
        fb, _mm256_cvtph_ps(_mm_load_si128(reinterpret_cast<__m128i*>(hb))));
    std::memcpy(dst + i, fb, static_cast<std::size_t>(n - i) * sizeof(*dst));
  }
}

void f32_row_to_f16(const float* src, std::uint16_t* dst, std::int64_t n) {
  constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + i), kRne);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  if (i < n) {
    alignas(32) float fb[8] = {};
    alignas(16) std::uint16_t hb[8];
    std::memcpy(fb, src + i, static_cast<std::size_t>(n - i) * sizeof(*src));
    _mm_store_si128(reinterpret_cast<__m128i*>(hb),
                    _mm256_cvtps_ph(_mm256_load_ps(fb), kRne));
    std::memcpy(dst + i, hb, static_cast<std::size_t>(n - i) * sizeof(*dst));
  }
}

}  // namespace

F16RowKernels f16c_f16_row_kernels() {
  return F16RowKernels{&f16_row_to_f32, &f32_row_to_f16};
}

}  // namespace ramiel::kernels

#else  // non-x86 target or compiler without F16C codegen

namespace ramiel::kernels {

F16RowKernels f16c_f16_row_kernels() { return F16RowKernels{}; }

}  // namespace ramiel::kernels

#endif
