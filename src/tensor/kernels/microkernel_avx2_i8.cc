// Explicit AVX2 quantized microkernel: pmaddubsw (u8 x s8 pair-sum to i16)
// + pmaddwd (i16 pair-sum to i32) + paddd, the classic maddubs/madd dot-4
// chain. This TU is compiled with -mavx2 (see src/tensor/CMakeLists.txt)
// and is only reached after the dispatcher's CPUID probe.
//
// Quantization headroom makes the chain exact: the unsigned operand is
// capped at 127, so a pmaddubsw pair sum is bounded by 2*127*127 = 32258 <
// 2^15 and never saturates — the i32 accumulators equal the scalar
// reference bit-for-bit.
#include "tensor/kernels/microkernel.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace ramiel::kernels {
namespace {

inline __m256i bcast_u32(const void* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm256_set1_epi32(static_cast<int>(v));
}

// 6x16 i32 tile; B k-groups are 64 bytes = two ymm of 8 columns x 4 k.
// kAUnsigned selects which operand feeds pmaddubsw's unsigned slot.
//
// The tile is processed as two 8-column halves, one full K sweep each:
// a whole-tile loop needs 12 accumulators + 2 B registers + 6 broadcasts
// + the ones constant live at once (> 16 ymm), and GCC answers by
// spilling every accumulator to the stack inside the hot loop — measured
// at barely above fp32-FMA speed. Per half only 9 registers are live
// (6 accumulators, B, ones, one broadcast), nothing spills, and the A
// panel re-read is a handful of L1-resident lines per k-group.
template <bool kAUnsigned>
void ukr_avx2_i8(std::int64_t kg, const void* a_panel, const void* b_panel,
                 std::int32_t* acc) {
  const auto* a = static_cast<const std::uint8_t*>(a_panel);
  const auto* b = static_cast<const std::uint8_t*>(b_panel);
  const __m256i ones = _mm256_set1_epi16(1);

  for (int h = 0; h < 2; ++h) {
    __m256i c0 = _mm256_setzero_si256();
    __m256i c1 = _mm256_setzero_si256();
    __m256i c2 = _mm256_setzero_si256();
    __m256i c3 = _mm256_setzero_si256();
    __m256i c4 = _mm256_setzero_si256();
    __m256i c5 = _mm256_setzero_si256();

    const std::uint8_t* bh = b + h * 32;
    for (std::int64_t g = 0; g < kg; ++g) {
      const __m256i bv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(bh + g * kNR * 4));
      const std::uint8_t* ag = a + g * kMR * 4;
      const auto fma_row = [&](int r, __m256i& c) {
        const __m256i av = bcast_u32(ag + r * 4);
        const __m256i p = kAUnsigned ? _mm256_maddubs_epi16(av, bv)
                                     : _mm256_maddubs_epi16(bv, av);
        c = _mm256_add_epi32(c, _mm256_madd_epi16(p, ones));
      };
      fma_row(0, c0);
      fma_row(1, c1);
      fma_row(2, c2);
      fma_row(3, c3);
      fma_row(4, c4);
      fma_row(5, c5);
    }

    std::int32_t* out = acc + h * 8;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0 * kNR), c0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 1 * kNR), c1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * kNR), c2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 3 * kNR), c3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * kNR), c4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 5 * kNR), c5);
  }
}

float absmax_f32_avx2(const float* p, std::int64_t n) {
  const __m256 sign_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_max_ps(acc, _mm256_and_ps(sign_mask, _mm256_loadu_ps(p + i)));
  }
  const __m128 q =
      _mm_max_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
  const __m128 d = _mm_max_ps(q, _mm_movehl_ps(q, q));
  float m = _mm_cvtss_f32(_mm_max_ss(d, _mm_shuffle_ps(d, d, 1)));
  for (; i < n; ++i) {
    const float a = std::fabs(p[i]);
    m = a > m ? a : m;
  }
  return m;
}

// Matches the scalar quantize_u8 in qgemm.cc exactly: the float product is
// clamped to [-63, 63] *before* rounding (so wildly saturating inputs never
// hit the undefined float->int overflow), and vcvtps2dq rounds to nearest-
// even just like lrintf.
void quantize_u8_row_avx2(const float* src, std::uint8_t* dst, std::int64_t n,
                          float inv_sd) {
  const __m256 vs = _mm256_set1_ps(inv_sd);
  const __m256 lo = _mm256_set1_ps(-63.0f);
  const __m256 hi = _mm256_set1_ps(63.0f);
  const __m256i off = _mm256_set1_epi32(64);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_mul_ps(_mm256_loadu_ps(src + i), vs);
    x = _mm256_max_ps(_mm256_min_ps(x, hi), lo);
    const __m256i q = _mm256_add_epi32(_mm256_cvtps_epi32(x), off);
    const __m128i w = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                      _mm256_extracti128_si256(q, 1));
    const __m128i b = _mm_packus_epi16(w, w);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), b);
  }
  for (; i < n; ++i) {
    float x = src[i] * inv_sd;
    x = x > 63.0f ? 63.0f : (x < -63.0f ? -63.0f : x);
    dst[i] = static_cast<std::uint8_t>(
        static_cast<int>(std::lrintf(x)) + 64);
  }
}

}  // namespace

I8Microkernels avx2_i8_microkernels() {
  return I8Microkernels{&ukr_avx2_i8<true>, &ukr_avx2_i8<false>};
}

LowpRowKernels avx2_lowp_row_kernels() {
  return LowpRowKernels{&absmax_f32_avx2, &quantize_u8_row_avx2};
}

}  // namespace ramiel::kernels

#else  // non-x86 target or compiler without AVX2 codegen

namespace ramiel::kernels {

I8Microkernels avx2_i8_microkernels() { return I8Microkernels{}; }

LowpRowKernels avx2_lowp_row_kernels() { return LowpRowKernels{}; }

}  // namespace ramiel::kernels

#endif
