#include "tensor/kernels/scratch.h"

#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace ramiel::kernels {
namespace {

struct ScratchMetrics {
  obs::Counter* arena = obs::registry().counter(
      "ramiel_kernel_scratch_arena_total",
      "Kernel scratch acquisitions served by a worker arena");
  obs::Counter* heap = obs::registry().counter(
      "ramiel_kernel_scratch_heap_total",
      "Kernel scratch acquisitions that fell back to the heap");
};

ScratchMetrics& metrics() {
  static ScratchMetrics* m = new ScratchMetrics();
  return *m;
}

}  // namespace

KernelScratch::KernelScratch(std::size_t numel) : numel_(numel) {
  if (numel_ == 0) return;
  if (AllocSink* sink = thread_alloc_sink()) {
    if (float* p = sink->take_scratch(numel_)) {
      ptr_ = p;
      from_sink_ = true;
      metrics().arena->inc();
      return;
    }
  }
  heap_.resize(numel_);
  ptr_ = heap_.data();
  metrics().heap->inc();
}

KernelScratch::~KernelScratch() {
  if (from_sink_) {
    thread_alloc_sink()->release_scratch(ptr_, numel_);
  }
}

}  // namespace ramiel::kernels
