// RAII kernel workspace: one contiguous float blob per kernel call.
//
// Acquisition order: the calling thread's AllocSink (when the executor has
// installed one, scratch comes from the worker's persistent MemArena —
// see src/mem/arena.h), else a heap vector. Kernels compute their total
// workspace up front and take it in ONE acquisition, then subdivide — a
// single take keeps the arena bump allocator trivially LIFO and means a
// mid-kernel arena grow can never dangle an earlier sub-buffer.
#pragma once

#include <cstddef>
#include <vector>

namespace ramiel::kernels {

class KernelScratch {
 public:
  /// Acquires `numel` floats (zero-length acquisitions hold nothing).
  explicit KernelScratch(std::size_t numel);
  ~KernelScratch();

  KernelScratch(const KernelScratch&) = delete;
  KernelScratch& operator=(const KernelScratch&) = delete;

  float* data() { return ptr_; }
  std::size_t numel() const { return numel_; }

  /// True when the blob came from the thread's AllocSink (arena) rather
  /// than the heap.
  bool from_sink() const { return from_sink_; }

 private:
  float* ptr_ = nullptr;
  std::size_t numel_ = 0;
  bool from_sink_ = false;
  std::vector<float> heap_;
};

}  // namespace ramiel::kernels
