// Internal contract between the blocked SGEMM driver and its microkernels.
//
// A microkernel computes one MR x NR register tile:
//
//   acc[MR][NR] = sum_{k < kc} a_panel[k][MR] (x) b_panel[k][NR]
//
// over panels packed by the driver (a_panel: k-major with MR consecutive
// row elements per k; b_panel: k-major with NR consecutive column elements
// per k). It always computes the full tile — the driver pads panels with
// zeros at the M/N edges and masks the write-back — and always *overwrites*
// acc, leaving accumulation across KC blocks, bias and activation to the
// driver's merge step. That keeps the hot loop free of branches and every
// epilogue decision in one portable place.
#pragma once

#include <cstdint>

namespace ramiel::kernels {

// Register tile. MR=6 rows x NR=16 columns fits AVX2: 12 ymm accumulators
// + 2 B loads + 1 A broadcast = 15 of 16 registers.
inline constexpr std::int64_t kMR = 6;
inline constexpr std::int64_t kNR = 16;

// Cache blocking. KC x NR B-panels (16 KiB) stream through L1; the MC x KC
// A-block (~72 KiB) sits in L2 while every B-panel of the NC stripe crosses
// it; NC bounds the packed-B stripe (KC x NC = 2 MiB) to L3-ish sizes.
inline constexpr std::int64_t kMC = 72;
inline constexpr std::int64_t kKC = 256;
inline constexpr std::int64_t kNC = 2048;

/// acc is a 64-byte-aligned MR x NR row-major buffer, always fully written.
using MicroKernelFn = void (*)(std::int64_t kc, const float* a_panel,
                               const float* b_panel, float* acc);

void microkernel_scalar(std::int64_t kc, const float* a_panel,
                        const float* b_panel, float* acc);

/// Compiled with AVX2+FMA codegen in its own TU; only ever called after a
/// runtime CPUID check. Null on targets where the compiler can't emit AVX2.
MicroKernelFn avx2_microkernel();

// ---------------------------------------------------------------------------
// Quantized (i8) microkernels.
//
// Panels pack k in groups of 4 so one 32-bit load per A row feeds a whole
// dot-4 instruction (AVX2 pmaddubsw+pmaddwd, or AVX-512 vpdpbusd):
//
//   a_panel: [kg][kMR][4] bytes  (4 consecutive k per row, row-major groups)
//   b_panel: [kg][kNR][4] bytes  (4 consecutive k per column)
//
// kg = ceil(kc / 4); the driver zero-pads the ragged k tail and M/N edges.
// The *signed* operand's padding must be zero (0 * anything == 0); the
// unsigned side's padding is then irrelevant, but the driver zeroes it too.
//
// The x86 dot-4 instructions fix which operand is unsigned, so each tier
// exports two variants: `au` treats the A panel as unsigned u8 activations
// against s8 B weights (gemm/matmul: weights on the right), `as` the
// reverse (conv: weights are the GEMM left operand). Multiplication
// commutes per element, so both compute the same tile, and the pair-sum
// bound 2*127*127 = 32258 < 2^15 means the pmaddubsw chain never saturates
// — every tier produces exactly the same i32 accumulators.
// ---------------------------------------------------------------------------

/// acc is a 64-byte-aligned MR x NR row-major i32 tile, always fully
/// *overwritten* (accumulation across KC blocks stays in the driver).
using MicroKernelI8Fn = void (*)(std::int64_t kg, const void* a_panel,
                                 const void* b_panel, std::int32_t* acc);

/// Per-tier kernel pair; null fields when the TU could not be compiled for
/// the target.
struct I8Microkernels {
  MicroKernelI8Fn au = nullptr;  // A panel unsigned (activations-left)
  MicroKernelI8Fn as = nullptr;  // A panel signed (weights-left, conv)
};

void microkernel_i8_scalar_au(std::int64_t kg, const void* a_panel,
                              const void* b_panel, std::int32_t* acc);
void microkernel_i8_scalar_as(std::int64_t kg, const void* a_panel,
                              const void* b_panel, std::int32_t* acc);

/// AVX2 pmaddubsw/pmaddwd tier (own TU, -mavx2); gated by CPUID at dispatch.
I8Microkernels avx2_i8_microkernels();

/// AVX-512 VNNI vpdpbusd tier (own TU, -mavx512vnni); one dot-4-accumulate
/// instruction per row per k-group — the tier that clears 2x fp32.
I8Microkernels vnni_i8_microkernels();

// ---------------------------------------------------------------------------
// Driver-level row helpers. The quantized GEMM's non-matmul work — the
// dynamic-range scan and the on-pack u8 quantization — is scalar-per-element
// in the portable driver and costs as much as the integer inner loop at
// GEMM-256 sizes. These SIMD versions ride in the -mavx2 TU and are
// bit-exact against the scalar fallbacks (vcvtps2dq and lrintf both round
// to nearest-even under the default MXCSR; vmaxps agrees with std::max on
// finite values), so tier forcing never changes results.
// ---------------------------------------------------------------------------

struct LowpRowKernels {
  /// max(|p[i]|) over n contiguous floats (0 for n == 0).
  float (*absmax_f32)(const float* p, std::int64_t n) = nullptr;
  /// dst[i] = clamp(round(src[i] * inv_sd), -63, 63) + 64 over n floats.
  void (*quantize_u8_row)(const float* src, std::uint8_t* dst, std::int64_t n,
                          float inv_sd) = nullptr;
};

/// AVX2 row helpers (own TU, -mavx2); null fields when the TU could not be
/// compiled for the target. Gated by CPUID at dispatch.
LowpRowKernels avx2_lowp_row_kernels();

/// F16C row converters (own TU, -mf16c): vcvtph2ps / vcvtps2ph, bit-exact
/// against the scalar f16 conversions (both are IEEE, round-to-nearest-even
/// on narrowing). Null fields when the TU could not be compiled; callers
/// must CPUID-check f16c before using them.
struct F16RowKernels {
  void (*to_f32)(const std::uint16_t* src, float* dst, std::int64_t n) =
      nullptr;
  void (*from_f32)(const float* src, std::uint16_t* dst, std::int64_t n) =
      nullptr;
};

F16RowKernels f16c_f16_row_kernels();

}  // namespace ramiel::kernels
