// Internal contract between the blocked SGEMM driver and its microkernels.
//
// A microkernel computes one MR x NR register tile:
//
//   acc[MR][NR] = sum_{k < kc} a_panel[k][MR] (x) b_panel[k][NR]
//
// over panels packed by the driver (a_panel: k-major with MR consecutive
// row elements per k; b_panel: k-major with NR consecutive column elements
// per k). It always computes the full tile — the driver pads panels with
// zeros at the M/N edges and masks the write-back — and always *overwrites*
// acc, leaving accumulation across KC blocks, bias and activation to the
// driver's merge step. That keeps the hot loop free of branches and every
// epilogue decision in one portable place.
#pragma once

#include <cstdint>

namespace ramiel::kernels {

// Register tile. MR=6 rows x NR=16 columns fits AVX2: 12 ymm accumulators
// + 2 B loads + 1 A broadcast = 15 of 16 registers.
inline constexpr std::int64_t kMR = 6;
inline constexpr std::int64_t kNR = 16;

// Cache blocking. KC x NR B-panels (16 KiB) stream through L1; the MC x KC
// A-block (~72 KiB) sits in L2 while every B-panel of the NC stripe crosses
// it; NC bounds the packed-B stripe (KC x NC = 2 MiB) to L3-ish sizes.
inline constexpr std::int64_t kMC = 72;
inline constexpr std::int64_t kKC = 256;
inline constexpr std::int64_t kNC = 2048;

/// acc is a 64-byte-aligned MR x NR row-major buffer, always fully written.
using MicroKernelFn = void (*)(std::int64_t kc, const float* a_panel,
                               const float* b_panel, float* acc);

void microkernel_scalar(std::int64_t kc, const float* a_panel,
                        const float* b_panel, float* acc);

/// Compiled with AVX2+FMA codegen in its own TU; only ever called after a
/// runtime CPUID check. Null on targets where the compiler can't emit AVX2.
MicroKernelFn avx2_microkernel();

}  // namespace ramiel::kernels
