// AVX-512 VNNI quantized microkernel: vpdpbusd computes u8 x s8 dot-4 with
// i32 accumulation in one instruction, so the 6x16 tile is 6 zmm
// accumulators fed by one 64-byte B load and one A broadcast per row per
// k-group — the tier that clears 2x over fp32 FMA on VNNI hosts. Compiled
// with -mavx512vnni codegen in its own TU (see src/tensor/CMakeLists.txt)
// and only reached after the dispatcher's CPUID probe.
//
// vpdpbusd never saturates on our operands: each u8 factor is <= 127, so
// the four i16 products are <= 127*127 and their i32 sum plus the running
// accumulator stays far from overflow for any realistic K.
#include "tensor/kernels/microkernel.h"

#if defined(__x86_64__) && defined(__AVX512F__) && defined(__AVX512VNNI__)

#include <immintrin.h>

#include <cstring>

namespace ramiel::kernels {
namespace {

inline __m512i bcast_u32_512(const void* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm512_set1_epi32(static_cast<int>(v));
}

// One zmm holds a full 16-column k-group of B; vpdpbusd's first source is
// the unsigned operand, selected by kAUnsigned.
template <bool kAUnsigned>
void ukr_vnni_i8(std::int64_t kg, const void* a_panel, const void* b_panel,
                 std::int32_t* acc) {
  const auto* a = static_cast<const std::uint8_t*>(a_panel);
  const auto* b = static_cast<const std::uint8_t*>(b_panel);

  __m512i c[kMR];
  for (int r = 0; r < kMR; ++r) c[r] = _mm512_setzero_si512();

  for (std::int64_t g = 0; g < kg; ++g) {
    const __m512i bv = _mm512_loadu_si512(b + g * kNR * 4);
    const std::uint8_t* ag = a + g * kMR * 4;
    for (int r = 0; r < kMR; ++r) {
      const __m512i av = bcast_u32_512(ag + r * 4);
      if constexpr (kAUnsigned) {
        c[r] = _mm512_dpbusd_epi32(c[r], av, bv);
      } else {
        c[r] = _mm512_dpbusd_epi32(c[r], bv, av);
      }
    }
  }

  for (int r = 0; r < kMR; ++r) {
    _mm512_store_si512(acc + r * kNR, c[r]);
  }
}

}  // namespace

I8Microkernels vnni_i8_microkernels() {
  return I8Microkernels{&ukr_vnni_i8<true>, &ukr_vnni_i8<false>};
}

}  // namespace ramiel::kernels

#else  // compiler can't emit AVX-512 VNNI for this target

namespace ramiel::kernels {

I8Microkernels vnni_i8_microkernels() { return I8Microkernels{}; }

}  // namespace ramiel::kernels

#endif
