// Runtime kernel-path dispatch: RAMIEL_KERNEL env knob + CPUID probe.
#include <algorithm>
#include <atomic>
#include <cstring>

#include "support/env.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/microkernel.h"

namespace ramiel::kernels {
namespace {

Path env_path() {
  if (env_kernel_path("vector") == "scalar") return Path::kScalar;
  // Unknown values (and "vector") select the vector path — it degrades to
  // the portable microkernel on its own, so it is always a safe default.
  return Path::kVector;
}

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512_vnni() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512vnni");
#else
  return false;
#endif
}

// Best i8 tier the hardware (and the compiled TUs) can actually run.
I8Kernel best_i8_kernel() {
  if (cpu_has_avx512_vnni() && vnni_i8_microkernels().au != nullptr) {
    return I8Kernel::kVnni;
  }
  if (cpu_has_avx2_fma() && avx2_i8_microkernels().au != nullptr) {
    return I8Kernel::kAvx2;
  }
  return I8Kernel::kScalar;
}

// -1 = follow the env default; otherwise a Path value pinned by tests.
std::atomic<int> g_forced{-1};

// -1 = automatic tier selection; otherwise an I8Kernel cap pinned by tests.
std::atomic<int> g_forced_i8{-1};

}  // namespace

Path active_path() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Path>(forced);
  static const Path env = env_path();
  return env;
}

bool vector_microkernel_available() {
  static const bool ok = cpu_has_avx2_fma() && avx2_microkernel() != nullptr;
  return ok;
}

void force_kernel_path(std::optional<Path> path) {
  g_forced.store(path ? static_cast<int>(*path) : -1,
                 std::memory_order_relaxed);
}

I8Kernel active_i8_kernel() {
  // RAMIEL_KERNEL=scalar pins *all* kernels to their portable loops so the
  // knob keeps meaning "no SIMD anywhere".
  if (active_path() == Path::kScalar) return I8Kernel::kScalar;
  static const I8Kernel best = best_i8_kernel();
  const int forced = g_forced_i8.load(std::memory_order_relaxed);
  if (forced < 0) return best;
  // The forced value is a cap: asking for VNNI on an AVX2-only host still
  // runs AVX2 — tests exercise "at most this tier", never a kernel the CPU
  // can't execute.
  return std::min(static_cast<I8Kernel>(forced), best);
}

void force_i8_kernel(std::optional<I8Kernel> k) {
  g_forced_i8.store(k ? static_cast<int>(*k) : -1, std::memory_order_relaxed);
}

namespace {

bool cpu_has_f16c() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx");
#else
  return false;
#endif
}

// F16C conversions are bit-exact against the scalar ones, so this is a
// pure speed decision and ignores RAMIEL_KERNEL forcing.
const F16RowKernels& f16_row_kernels() {
  static const F16RowKernels rk =
      cpu_has_f16c() ? f16c_f16_row_kernels() : F16RowKernels{};
  return rk;
}

}  // namespace

void rows_to_f32(const void* src, DType dt, float* dst, std::size_t n) {
  if (dt == DType::kF32) {
    std::memcpy(dst, src, n * sizeof(float));
    return;
  }
  if (dt == DType::kF16 && f16_row_kernels().to_f32 != nullptr) {
    f16_row_kernels().to_f32(static_cast<const std::uint16_t*>(src), dst,
                             static_cast<std::int64_t>(n));
    return;
  }
  convert_storage_to_f32(src, dt, dst, n);
}

void rows_from_f32(const float* src, void* dst, DType dt, std::size_t n) {
  if (dt == DType::kF32) {
    std::memcpy(dst, src, n * sizeof(float));
    return;
  }
  if (dt == DType::kF16 && f16_row_kernels().from_f32 != nullptr) {
    f16_row_kernels().from_f32(src, static_cast<std::uint16_t*>(dst),
                               static_cast<std::int64_t>(n));
    return;
  }
  convert_f32_to_storage(src, dst, dt, n);
}

const char* i8_kernel_name(I8Kernel k) {
  switch (k) {
    case I8Kernel::kScalar: return "scalar";
    case I8Kernel::kAvx2: return "avx2";
    case I8Kernel::kVnni: return "vnni";
  }
  return "?";
}

}  // namespace ramiel::kernels
