// Runtime kernel-path dispatch: RAMIEL_KERNEL env knob + CPUID probe.
#include <atomic>

#include "support/env.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/microkernel.h"

namespace ramiel::kernels {
namespace {

Path env_path() {
  if (env_kernel_path("vector") == "scalar") return Path::kScalar;
  // Unknown values (and "vector") select the vector path — it degrades to
  // the portable microkernel on its own, so it is always a safe default.
  return Path::kVector;
}

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// -1 = follow the env default; otherwise a Path value pinned by tests.
std::atomic<int> g_forced{-1};

}  // namespace

Path active_path() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Path>(forced);
  static const Path env = env_path();
  return env;
}

bool vector_microkernel_available() {
  static const bool ok = cpu_has_avx2_fma() && avx2_microkernel() != nullptr;
  return ok;
}

void force_kernel_path(std::optional<Path> path) {
  g_forced.store(path ? static_cast<int>(*path) : -1,
                 std::memory_order_relaxed);
}

}  // namespace ramiel::kernels
