// Dense float32 tensor with shared immutable storage.
//
// Tensors are value types: copying a Tensor copies only the shape and a
// reference to the underlying buffer, which makes passing tensors through
// cross-cluster channels cheap (this mirrors how the paper's generated
// Python passes torch tensors through multiprocessing queues). Storage is
// treated as immutable once a tensor has been published to another cluster;
// kernels always allocate fresh outputs.
//
// Storage comes in two modes:
//   - owning: a refcounted heap buffer (the default; lifetime managed by
//     the last Tensor referencing it);
//   - non-owning: a raw view into externally managed memory — the static
//     memory planner's per-worker arenas (src/mem/). The arena owner
//     guarantees the slot outlives every reader; such tensors must never
//     escape the run that produced them (the executor clones them back to
//     owning storage at the result boundary).
//
// While an AllocSink is installed on the calling thread, Tensor(Shape)
// offers the allocation to the sink first; this is how kernels write into
// planner-assigned arena slots without knowing about the planner at all.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/rng.h"
#include "tensor/shape.h"

namespace ramiel {

/// Thread-local allocation interceptor installed by the memory-planner
/// runtime (src/mem/): while installed, Tensor(Shape) asks the sink for
/// backing storage before falling back to a fresh heap buffer.
class AllocSink {
 public:
  virtual ~AllocSink() = default;

  /// Returns a buffer of exactly `numel` floats (already zeroed, matching
  /// the heap path's zero-initialization, unless the slot is an in-place
  /// destination), or nullptr to decline and let the tensor heap-allocate.
  virtual float* take(std::size_t numel) = 0;

  /// Transient kernel workspace (im2col panels, GEMM pack buffers): never
  /// backs a Tensor, never zeroed, must be released in LIFO order before
  /// the kernel returns. Default declines, sending callers to the heap —
  /// arena scratch is an optimization, never a correctness requirement.
  virtual float* take_scratch(std::size_t numel) {
    (void)numel;
    return nullptr;
  }
  virtual void release_scratch(float* ptr, std::size_t numel) {
    (void)ptr;
    (void)numel;
  }
};

/// Installs `sink` for the calling thread (nullptr uninstalls); returns the
/// previously installed sink so scopes can nest.
AllocSink* set_thread_alloc_sink(AllocSink* sink);

/// The sink currently installed on the calling thread (nullptr if none).
/// Kernels use this to request scratch workspace.
AllocSink* thread_alloc_sink();

/// Dense row-major float32 tensor.
class Tensor {
 public:
  /// Empty tensor: shape [0], zero elements, zero capacity — no storage is
  /// allocated. (Use Tensor::scalar for a rank-0 one-element tensor.)
  Tensor();

  /// Allocates a zero-initialized tensor of `shape` (or adopts a slot from
  /// the thread's AllocSink when one is installed).
  explicit Tensor(Shape shape);

  /// Wraps existing data (copied) with `shape`. Sizes must agree.
  Tensor(Shape shape, std::vector<float> data);

  /// Non-owning view over externally managed memory (`size` floats). The
  /// caller guarantees the memory outlives every tensor sharing it.
  static Tensor from_external(Shape shape, float* data, std::size_t size);

  /// All-zeros tensor.
  static Tensor zeros(Shape shape);

  /// Tensor filled with `value`.
  static Tensor full(Shape shape, float value);

  /// Scalar (rank-0) tensor.
  static Tensor scalar(float value);

  /// 1-D tensor from values.
  static Tensor vec(std::vector<float> values);

  /// Uniform random values in [lo, hi), drawn from `rng` (deterministic).
  static Tensor random(Shape shape, Rng& rng, float lo = -1.0f, float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }

  /// Read-only view of all elements.
  std::span<const float> data() const { return {ptr_, size_}; }

  /// Mutable view. Only valid before the tensor is shared (use during
  /// construction inside kernels).
  std::span<float> mutable_data() { return {ptr_, size_}; }

  /// Element access by flat index.
  float at(std::int64_t i) const { return ptr_[static_cast<std::size_t>(i)]; }

  /// Reinterprets the buffer under a new shape with equal numel (zero-copy).
  Tensor reshaped(Shape new_shape) const;

  /// True if both tensors share the same storage buffer.
  bool shares_storage_with(const Tensor& o) const {
    return ptr_ != nullptr && ptr_ == o.ptr_;
  }

  /// True when this tensor's storage is refcounted (or empty); false for
  /// non-owning views into arena memory, which must not outlive their run.
  bool owns_storage() const { return owner_ != nullptr || ptr_ == nullptr; }

  /// Deep copy with fresh owning storage (never consults the AllocSink).
  Tensor clone() const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> owner_;  // null in non-owning mode
  float* ptr_ = nullptr;
  std::size_t size_ = 0;
};

/// True when shapes match and elements differ by at most `atol` + `rtol`*|b|.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-5f);

}  // namespace ramiel
