// Dense float32 tensor with shared immutable storage.
//
// Tensors are value types: copying a Tensor copies only the shape and a
// reference to the underlying buffer, which makes passing tensors through
// cross-cluster channels cheap (this mirrors how the paper's generated
// Python passes torch tensors through multiprocessing queues). Storage is
// treated as immutable once a tensor has been published to another cluster;
// kernels always allocate fresh outputs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/rng.h"
#include "tensor/shape.h"

namespace ramiel {

/// Dense row-major float32 tensor.
class Tensor {
 public:
  /// Empty rank-0 tensor holding a single zero element.
  Tensor();

  /// Allocates an uninitialized tensor of `shape`.
  explicit Tensor(Shape shape);

  /// Wraps existing data (copied) with `shape`. Sizes must agree.
  Tensor(Shape shape, std::vector<float> data);

  /// All-zeros tensor.
  static Tensor zeros(Shape shape);

  /// Tensor filled with `value`.
  static Tensor full(Shape shape, float value);

  /// Scalar (rank-0) tensor.
  static Tensor scalar(float value);

  /// 1-D tensor from values.
  static Tensor vec(std::vector<float> values);

  /// Uniform random values in [lo, hi), drawn from `rng` (deterministic).
  static Tensor random(Shape shape, Rng& rng, float lo = -1.0f, float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }

  /// Read-only view of all elements.
  std::span<const float> data() const { return {buf_->data(), buf_->size()}; }

  /// Mutable view. Only valid before the tensor is shared (use during
  /// construction inside kernels).
  std::span<float> mutable_data() { return {buf_->data(), buf_->size()}; }

  /// Element access by flat index.
  float at(std::int64_t i) const { return (*buf_)[static_cast<std::size_t>(i)]; }

  /// Reinterprets the buffer under a new shape with equal numel (zero-copy).
  Tensor reshaped(Shape new_shape) const;

  /// True if both tensors share the same storage buffer.
  bool shares_storage_with(const Tensor& o) const { return buf_ == o.buf_; }

  /// Deep copy with fresh storage.
  Tensor clone() const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> buf_;
};

/// True when shapes match and elements differ by at most `atol` + `rtol`*|b|.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-5f);

}  // namespace ramiel
