// Dense tensor with shared immutable storage and a storage DType.
//
// Tensors are value types: copying a Tensor copies only the shape and a
// reference to the underlying buffer, which makes passing tensors through
// cross-cluster channels cheap (this mirrors how the paper's generated
// Python passes torch tensors through multiprocessing queues). Storage is
// treated as immutable once a tensor has been published to another cluster;
// kernels always allocate fresh outputs.
//
// Compute is fp32 everywhere; the DType (support/dtype.h) describes only
// how elements are *stored*. f32 tensors expose float spans via data();
// f16/bf16/i8 tensors expose raw byte storage (u16_data()/i8_data()) and
// convert at kernel boundaries (cast()/dequantize(), or convert-on-pack
// inside the GEMM drivers). i8 tensors additionally carry per-channel
// quantization metadata (scales + quantized-weight channel sums) used by
// the quantized GEMM epilogue.
//
// Storage comes in two modes:
//   - owning: a refcounted heap buffer (the default; lifetime managed by
//     the last Tensor referencing it);
//   - non-owning: a raw view into externally managed memory — the static
//     memory planner's per-worker arenas (src/mem/). The arena owner
//     guarantees the slot outlives every reader; such tensors must never
//     escape the run that produced them (the executor clones them back to
//     owning storage at the result boundary).
//
// While an AllocSink is installed on the calling thread, Tensor(Shape)
// offers the allocation to the sink first; this is how kernels write into
// planner-assigned arena slots without knowing about the planner at all.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/dtype.h"
#include "support/rng.h"
#include "tensor/shape.h"

namespace ramiel {

/// Thread-local allocation interceptor installed by the memory-planner
/// runtime (src/mem/): while installed, Tensor(Shape) asks the sink for
/// backing storage before falling back to a fresh heap buffer.
class AllocSink {
 public:
  virtual ~AllocSink() = default;

  /// Returns a buffer holding exactly `numel` elements of `dtype` (already
  /// zeroed, matching the heap path's zero-initialization, unless the slot
  /// is an in-place destination), or nullptr to decline and let the tensor
  /// heap-allocate. The pointer is float-aligned regardless of dtype (slots
  /// are 64-byte aligned).
  virtual float* take(std::size_t numel, DType dtype) = 0;

  /// Transient kernel workspace (im2col panels, GEMM pack buffers): never
  /// backs a Tensor, never zeroed, must be released in LIFO order before
  /// the kernel returns. Default declines, sending callers to the heap —
  /// arena scratch is an optimization, never a correctness requirement.
  virtual float* take_scratch(std::size_t numel) {
    (void)numel;
    return nullptr;
  }
  virtual void release_scratch(float* ptr, std::size_t numel) {
    (void)ptr;
    (void)numel;
  }
};

/// Installs `sink` for the calling thread (nullptr uninstalls); returns the
/// previously installed sink so scopes can nest.
AllocSink* set_thread_alloc_sink(AllocSink* sink);

/// The sink currently installed on the calling thread (nullptr if none).
/// Kernels use this to request scratch workspace.
AllocSink* thread_alloc_sink();

/// Per-channel symmetric quantization metadata carried by i8 tensors.
/// Channel c covers the slab `axis == c` of the tensor; dequantized value
/// = scales[c] * q. sums[c] is the integer sum of the channel's quantized
/// elements, precomputed so the quantized GEMM can apply the asymmetric
/// activation zero-point correction without re-reading the weights.
struct QuantMeta {
  int axis = 0;
  std::vector<float> scales;
  std::vector<std::int32_t> sums;
};

/// Dense row-major tensor.
class Tensor {
 public:
  /// Empty tensor: shape [0], zero elements, zero capacity — no storage is
  /// allocated. (Use Tensor::scalar for a rank-0 one-element tensor.)
  Tensor();

  /// Allocates a zero-initialized tensor of `shape` and `dtype` (or adopts
  /// a slot from the thread's AllocSink when one is installed).
  explicit Tensor(Shape shape, DType dtype = DType::kF32);

  /// Wraps existing f32 data (copied) with `shape`. Sizes must agree.
  Tensor(Shape shape, std::vector<float> data);

  /// Non-owning f32 view over externally managed memory (`size` floats).
  /// The caller guarantees the memory outlives every tensor sharing it.
  static Tensor from_external(Shape shape, float* data, std::size_t size);

  /// All-zeros f32 tensor.
  static Tensor zeros(Shape shape);

  /// f32 tensor filled with `value`.
  static Tensor full(Shape shape, float value);

  /// Scalar (rank-0) f32 tensor.
  static Tensor scalar(float value);

  /// 1-D f32 tensor from values.
  static Tensor vec(std::vector<float> values);

  /// Uniform random values in [lo, hi), drawn from `rng` (deterministic).
  static Tensor random(Shape shape, Rng& rng, float lo = -1.0f, float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  DType dtype() const { return dtype_; }

  /// Storage footprint in bytes (numel x element size).
  std::int64_t byte_size() const {
    return static_cast<std::int64_t>(size_) *
           static_cast<std::int64_t>(dtype_size(dtype_));
  }

  /// Read-only view of all elements. f32 tensors only — low-precision
  /// storage must go through cast()/dequantize() or the typed raw views.
  std::span<const float> data() const {
    if (dtype_ != DType::kF32) fail_dtype_access("data");
    return {ptr_, size_};
  }

  /// Mutable view. Only valid before the tensor is shared (use during
  /// construction inside kernels). f32 tensors only.
  std::span<float> mutable_data() {
    if (dtype_ != DType::kF32) fail_dtype_access("mutable_data");
    return {ptr_, size_};
  }

  /// Element access by flat index (f32 tensors only).
  float at(std::int64_t i) const {
    if (dtype_ != DType::kF32) fail_dtype_access("at");
    return ptr_[static_cast<std::size_t>(i)];
  }

  /// Raw storage (any dtype), element count numel(), width dtype_size().
  const void* raw() const { return ptr_; }
  void* raw_mut() { return ptr_; }

  /// Typed raw views for the half-width and i8 storage formats.
  std::span<const std::uint16_t> u16_data() const;
  std::span<std::uint16_t> u16_mutable_data();
  std::span<const std::int8_t> i8_data() const;
  std::span<std::int8_t> i8_mutable_data();

  /// Per-channel quantization metadata (i8 tensors; null otherwise).
  const QuantMeta* quant() const { return quant_.get(); }

  /// Converts to `dtype` storage (f32 <-> f16/bf16; identity returns a
  /// shallow copy). The result consults the thread's AllocSink, so a cast
  /// at the eval boundary lands in the value's planned arena slot. i8 is
  /// not a cast target (it needs scales — see quantize_per_channel) and
  /// i8 sources must use dequantize().
  Tensor cast(DType dtype) const;

  /// Per-channel symmetric i8 quantization along `axis`: channel scale
  /// = absmax/127 (0 for an all-zero channel, which dequantizes exactly).
  /// Returns an i8 tensor carrying QuantMeta. f32 sources only.
  Tensor quantize_per_channel(int axis) const;

  /// Expands i8 storage back to f32 through the per-channel scales.
  Tensor dequantize() const;

  /// Reinterprets the buffer under a new shape with equal numel (zero-copy).
  Tensor reshaped(Shape new_shape) const;

  /// True if both tensors share the same storage buffer.
  bool shares_storage_with(const Tensor& o) const {
    return ptr_ != nullptr && ptr_ == o.ptr_;
  }

  /// True when this tensor's storage is refcounted (or empty); false for
  /// non-owning views into arena memory, which must not outlive their run.
  bool owns_storage() const { return owner_ != nullptr || ptr_ == nullptr; }

  /// Deep copy with fresh owning storage (never consults the AllocSink).
  Tensor clone() const;

 private:
  [[noreturn]] static void fail_dtype_access(const char* what);

  Shape shape_;
  DType dtype_ = DType::kF32;
  // Owner capacity is measured in floats (ceil(bytes/4)) so one refcounted
  // buffer type backs every dtype; ptr_ stays float-aligned, which any
  // narrower element also accepts. Null in non-owning mode.
  std::shared_ptr<std::vector<float>> owner_;
  float* ptr_ = nullptr;
  std::size_t size_ = 0;  // element count (== numel for non-empty tensors)
  std::shared_ptr<const QuantMeta> quant_;  // i8 only
};

/// True when shapes match and elements differ by at most `atol` + `rtol`*|b|.
/// f32 tensors only (compare low-precision tensors after cast/dequantize).
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-5f);

}  // namespace ramiel
