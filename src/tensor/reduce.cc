#include <algorithm>

#include "support/check.h"
#include "tensor/ops.h"

namespace ramiel {

Tensor reduce_mean(const Tensor& x, const std::vector<int>& axes) {
  const Shape& xs = x.shape();
  std::vector<bool> reduced(static_cast<std::size_t>(xs.rank()), false);
  for (int a : axes) {
    reduced[static_cast<std::size_t>(xs.normalize_axis(a))] = true;
  }
  std::vector<std::int64_t> out_dims;
  out_dims.reserve(static_cast<std::size_t>(xs.rank()));
  std::int64_t reduce_count = 1;
  for (int i = 0; i < xs.rank(); ++i) {
    if (reduced[static_cast<std::size_t>(i)]) {
      out_dims.push_back(1);
      reduce_count *= xs.dim(i);
    } else {
      out_dims.push_back(xs.dim(i));
    }
  }
  Shape os(std::move(out_dims));
  Tensor out = Tensor::zeros(os);
  auto in = x.data();
  auto dst = out.mutable_data();

  const auto in_strides = xs.strides();
  const auto out_strides = os.strides();
  std::vector<std::int64_t> idx(static_cast<std::size_t>(xs.rank()), 0);
  const std::int64_t n = xs.numel();
  for (std::int64_t flat = 0; flat < n; ++flat) {
    std::int64_t oflat = 0;
    for (int d = 0; d < xs.rank(); ++d) {
      auto ud = static_cast<std::size_t>(d);
      if (!reduced[ud]) oflat += idx[ud] * out_strides[ud];
    }
    dst[static_cast<std::size_t>(oflat)] += in[static_cast<std::size_t>(flat)];
    for (int d = xs.rank() - 1; d >= 0; --d) {
      auto ud = static_cast<std::size_t>(d);
      if (++idx[ud] < xs.dim(d)) break;
      idx[ud] = 0;
    }
  }
  const float inv = 1.0f / static_cast<float>(reduce_count);
  for (float& v : dst) v *= inv;
  return out;
}

}  // namespace ramiel
