#include "tensor/shape.h"

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

std::int64_t Shape::dim(int i) const {
  int r = rank();
  if (i < 0) i += r;
  RAMIEL_CHECK(i >= 0 && i < r, str_cat("dim index ", i, " out of range for rank ", r));
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (std::int64_t d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size());
  std::int64_t acc = 1;
  for (int i = rank() - 1; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = acc;
    acc *= dims_[static_cast<std::size_t>(i)];
  }
  return s;
}

int Shape::normalize_axis(int axis) const {
  int r = rank();
  if (axis < 0) axis += r;
  RAMIEL_CHECK(axis >= 0 && axis < r,
               str_cat("axis ", axis, " out of range for rank ", r));
  return axis;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace ramiel
