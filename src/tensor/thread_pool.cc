#include "tensor/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "support/check.h"
#include "support/env.h"

namespace ramiel {

ThreadPool::ThreadPool(int num_threads) {
  RAMIEL_CHECK(num_threads >= 0, "thread count must be non-negative");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    RAMIEL_CHECK(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  parallel_for(n, size() + 1, fn);
}

void ThreadPool::parallel_for(
    std::int64_t n, int max_parts,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const int parts = std::min(max_parts, size() + 1);
  if (parts <= 1 || n == 1) {
    fn(0, n);
    return;
  }
  const std::int64_t chunk = (n + parts - 1) / parts;

  struct Sync {
    std::atomic<int> remaining;
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto sync = std::make_shared<Sync>();
  int launched = 0;
  // Chunks beyond the first go to the pool; chunk 0 runs on the caller.
  for (std::int64_t begin = chunk; begin < n; begin += chunk) {
    ++launched;
  }
  sync->remaining.store(launched, std::memory_order_relaxed);
  for (std::int64_t begin = chunk; begin < n; begin += chunk) {
    const std::int64_t end = std::min(begin + chunk, n);
    submit([sync, &fn, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lk(sync->mu);
        if (!sync->error) sync->error = std::current_exception();
      }
      if (sync->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(sync->mu);
        sync->done.notify_all();
      }
    });
  }
  try {
    fn(0, std::min(chunk, n));
  } catch (...) {
    std::lock_guard<std::mutex> lk(sync->mu);
    if (!sync->error) sync->error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(sync->mu);
    sync->done.wait(lk, [&] {
      return sync->remaining.load(std::memory_order_acquire) == 0;
    });
    if (sync->error) std::rethrow_exception(sync->error);
  }
}

const OpContext& OpContext::serial() {
  static const OpContext ctx{};
  return ctx;
}

void dispatch_parallel_for(
    const OpContext& ctx, std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (ctx.pool == nullptr || ctx.threads <= 1 || ctx.pool->size() == 0) {
    if (n > 0) fn(0, n);
    return;
  }
  ctx.pool->parallel_for(n, ctx.threads, fn);
}

std::int64_t parallel_dispatch_threshold() {
  static const std::int64_t cutoff =
      env_parallel_threshold(static_cast<std::int64_t>(1) << 16);
  return cutoff;
}

void dispatch_parallel_for(
    const OpContext& ctx, std::int64_t n, std::int64_t est_cost_per_item,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n > 0 && n * est_cost_per_item < parallel_dispatch_threshold()) {
    fn(0, n);
    return;
  }
  dispatch_parallel_for(ctx, n, fn);
}

}  // namespace ramiel
