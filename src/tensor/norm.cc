#include <cmath>

#include "support/check.h"
#include "tensor/ops.h"

namespace ramiel {

Tensor batch_norm(const Tensor& x, const Tensor& scale, const Tensor& bias,
                  const Tensor& mean, const Tensor& var, float epsilon) {
  const Shape& xs = x.shape();
  RAMIEL_CHECK(xs.rank() >= 2, "batch_norm input must have a channel dim");
  const std::int64_t C = xs.dim(1);
  RAMIEL_CHECK(scale.numel() == C && bias.numel() == C && mean.numel() == C &&
                   var.numel() == C,
               "batch_norm parameter size must equal channel count");
  std::int64_t inner = 1;
  for (int i = 2; i < xs.rank(); ++i) inner *= xs.dim(i);
  const std::int64_t N = xs.dim(0);

  Tensor out(xs);
  auto in = x.data();
  auto dst = out.mutable_data();
  auto s = scale.data();
  auto b = bias.data();
  auto m = mean.data();
  auto v = var.data();
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      const float inv = 1.0f / std::sqrt(v[static_cast<std::size_t>(c)] + epsilon);
      const float a = s[static_cast<std::size_t>(c)] * inv;
      const float d = b[static_cast<std::size_t>(c)] -
                      a * m[static_cast<std::size_t>(c)];
      const float* src = in.data() + (n * C + c) * inner;
      float* o = dst.data() + (n * C + c) * inner;
      for (std::int64_t i = 0; i < inner; ++i) o[i] = a * src[i] + d;
    }
  }
  return out;
}

Tensor layer_norm(const Tensor& x, const Tensor& scale, const Tensor& bias,
                  float epsilon) {
  const Shape& xs = x.shape();
  RAMIEL_CHECK(xs.rank() >= 1, "layer_norm input must have rank >= 1");
  const std::int64_t D = xs.dim(-1);
  RAMIEL_CHECK(scale.numel() == D && bias.numel() == D,
               "layer_norm parameter size must equal last dim");
  const std::int64_t rows = xs.numel() / D;

  Tensor out(xs);
  auto in = x.data();
  auto dst = out.mutable_data();
  auto s = scale.data();
  auto b = bias.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = in.data() + r * D;
    float* o = dst.data() + r * D;
    float mean = 0.0f;
    for (std::int64_t i = 0; i < D; ++i) mean += src[i];
    mean /= static_cast<float>(D);
    float var = 0.0f;
    for (std::int64_t i = 0; i < D; ++i) {
      const float d = src[i] - mean;
      var += d * d;
    }
    var /= static_cast<float>(D);
    const float inv = 1.0f / std::sqrt(var + epsilon);
    for (std::int64_t i = 0; i < D; ++i) {
      o[i] = (src[i] - mean) * inv * s[static_cast<std::size_t>(i)] +
             b[static_cast<std::size_t>(i)];
    }
  }
  return out;
}

Tensor softmax(const Tensor& x, int axis) {
  const Shape& xs = x.shape();
  const int ax = xs.normalize_axis(axis);
  std::int64_t outer = 1, inner = 1;
  for (int i = 0; i < ax; ++i) outer *= xs.dim(i);
  for (int i = ax + 1; i < xs.rank(); ++i) inner *= xs.dim(i);
  const std::int64_t D = xs.dim(ax);

  Tensor out(xs);
  auto in = x.data();
  auto dst = out.mutable_data();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t i = 0; i < inner; ++i) {
      const float* src = in.data() + o * D * inner + i;
      float* d = dst.data() + o * D * inner + i;
      float mx = src[0];
      for (std::int64_t j = 1; j < D; ++j) mx = std::max(mx, src[j * inner]);
      float sum = 0.0f;
      for (std::int64_t j = 0; j < D; ++j) {
        const float e = std::exp(src[j * inner] - mx);
        d[j * inner] = e;
        sum += e;
      }
      const float inv = 1.0f / sum;
      for (std::int64_t j = 0; j < D; ++j) d[j * inner] *= inv;
    }
  }
  return out;
}

}  // namespace ramiel
