// Fixed-size thread pool with a parallel_for primitive.
//
// This models PyTorch's intra-op OpenMP parallelism: a kernel splits its
// index space into chunks and runs them on the pool, with the calling thread
// participating. Multiple cluster threads may call into one shared pool
// concurrently — the resulting contention deliberately reproduces the
// oversubscription effects the paper observes in Table V.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ramiel {

/// Work-queue thread pool. Threads are joined on destruction (RAII).
class ThreadPool {
 public:
  /// Creates `num_threads` workers. 0 is allowed and means "no workers":
  /// parallel_for then runs entirely on the calling thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding callers).
  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(begin, end) over [0, n) split into roughly equal chunks across
  /// the workers plus the calling thread. Blocks until all chunks finish.
  /// Exceptions from chunks propagate to the caller (first one wins).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Same, but splits into at most `max_parts` chunks (at most max_parts - 1
  /// of which are enqueued on the pool; chunk 0 runs on the caller). Used to
  /// honor an intra-op thread budget smaller than the pool size.
  void parallel_for(std::int64_t n, int max_parts,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Enqueues a fire-and-forget task.
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Per-kernel execution context. `threads <= 1` means serial execution; with
/// threads > 1 kernels split work across `pool`.
struct OpContext {
  int threads = 1;
  ThreadPool* pool = nullptr;

  /// Serial context singleton.
  static const OpContext& serial();
};

/// Dispatches fn over [0, n): serial when ctx has no pool or threads <= 1,
/// otherwise via ctx.pool->parallel_for.
void dispatch_parallel_for(
    const OpContext& ctx, std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Cost-aware variant: `est_cost_per_item` is the caller's estimate of the
/// work per index (roughly flops, or touched elements for memory-bound
/// loops). When n * est_cost_per_item falls below the sequential threshold
/// the whole range runs on the calling thread — pool handoff costs several
/// microseconds, which dwarfs a tiny op and inflates serve tail latency.
/// Threshold: RAMIEL_PARALLEL_THRESHOLD (cost units, default 65536; 0
/// disables the gate).
void dispatch_parallel_for(
    const OpContext& ctx, std::int64_t n, std::int64_t est_cost_per_item,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

/// The resolved sequential-dispatch cutoff (env override applied once).
std::int64_t parallel_dispatch_threshold();

}  // namespace ramiel
