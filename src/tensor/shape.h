// Tensor shape: an ordered list of dimension extents. Shapes are value types
// and are cheap to copy for the ranks seen in ML graphs (<= 5).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ramiel {

/// Dimension extents of a dense tensor. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  /// Number of dimensions.
  int rank() const { return static_cast<int>(dims_.size()); }

  /// Extent of dimension `i`; negative `i` counts from the back.
  std::int64_t dim(int i) const;

  /// Total number of elements (1 for scalars).
  std::int64_t numel() const;

  /// Mutable/const access to the raw dims.
  std::vector<std::int64_t>& dims() { return dims_; }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Row-major strides (in elements) for this shape.
  std::vector<std::int64_t> strides() const;

  /// Canonicalizes an axis index (allows negatives); throws on out-of-range.
  int normalize_axis(int axis) const;

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return dims_ != o.dims_; }

  /// "[1, 64, 56, 56]"
  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace ramiel
