// CPU operator kernels for the tensor runtime.
//
// These are the kernels the cluster runtime executes; they stand in for the
// PyTorch operators the paper's generated Python calls. Conventions follow
// ONNX: activations are NCHW, conv weights are [K, C/groups, R, S], matmul
// broadcasts leading batch dims. Every kernel allocates a fresh output.
//
// Kernels that have enough work to split (conv2d, matmul, pooling) accept an
// OpContext and use dispatch_parallel_for; elementwise ops are memory-bound
// and always run serially, mirroring where PyTorch's intra-op parallelism
// actually pays off.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tensor/kernels/kernels.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"

namespace ramiel {

// ---------------------------------------------------------------------------
// Convolution and pooling
// ---------------------------------------------------------------------------

/// Parameters for conv2d / pooling windows.
struct Conv2dParams {
  int stride_h = 1, stride_w = 1;
  int pad_h = 0, pad_w = 0;     // symmetric padding
  int dilation_h = 1, dilation_w = 1;
  int groups = 1;
  /// Activation fused into the conv write-back (set by the activation-fusion
  /// pass; applied identically on the implicit-GEMM and direct paths).
  kernels::Activation act = kernels::Activation::kNone;
  /// Output storage dtype (f32/f16/bf16; compute stays fp32 regardless).
  DType out_dtype = DType::kF32;
  /// Calibrated absmax of the activation input, used by the i8-weight path
  /// to skip the per-call dynamic-range scan. Negative: measure per call.
  float act_absmax = -1.0f;
};

/// 2-D convolution: input [N,C,H,W], weight [K,C/g,R,S], optional bias [K].
/// Input may be stored f32/f16/bf16; weight additionally may be i8 with
/// per-output-channel QuantMeta (axis 0), which routes dense convs through
/// the quantized GEMM.
Tensor conv2d(const Tensor& input, const Tensor& weight,
              const std::optional<Tensor>& bias, const Conv2dParams& p,
              const OpContext& ctx = OpContext::serial());

struct Pool2dParams {
  int kernel_h = 2, kernel_w = 2;
  int stride_h = 2, stride_w = 2;
  int pad_h = 0, pad_w = 0;
  bool count_include_pad = false;  // for average pooling
};

/// Max pooling over [N,C,H,W].
Tensor max_pool2d(const Tensor& input, const Pool2dParams& p,
                  const OpContext& ctx = OpContext::serial());

/// Average pooling over [N,C,H,W].
Tensor avg_pool2d(const Tensor& input, const Pool2dParams& p,
                  const OpContext& ctx = OpContext::serial());

/// Global average pooling: [N,C,H,W] -> [N,C,1,1].
Tensor global_avg_pool(const Tensor& input,
                       const OpContext& ctx = OpContext::serial());

/// Nearest-neighbor spatial resize by integer scale: [N,C,H,W] -> [N,C,H*s,W*s].
Tensor resize_nearest(const Tensor& input, int scale,
                      const OpContext& ctx = OpContext::serial());

// ---------------------------------------------------------------------------
// Matrix products
// ---------------------------------------------------------------------------

/// Batched matmul with broadcasting over leading dims: [..,M,K] x [..,K,N].
/// `a` may be stored f32/f16/bf16; rank-2 `b` additionally may be i8 with
/// per-column QuantMeta (axis 1), which routes through the quantized GEMM.
/// `out_dtype` selects the output storage (f32/f16/bf16); `act_absmax` is
/// the calibrated dynamic range of `a` for the i8 path (negative: measure).
Tensor matmul(const Tensor& a, const Tensor& b,
              const OpContext& ctx = OpContext::serial(),
              DType out_dtype = DType::kF32, float act_absmax = -1.0f);

/// GEMM: a [M,K] (optionally transposed), b [K,N] (optionally transposed),
/// plus optional bias broadcast over rows, plus an optional activation fused
/// into the write-back. Matches ONNX Gemm (with act == kNone). Storage
/// dtypes as in matmul (i8 `b` carries QuantMeta on its output-channel
/// axis, i.e. axis 1, or 0 when trans_b).
Tensor gemm(const Tensor& a, const Tensor& b, const std::optional<Tensor>& bias,
            bool trans_a = false, bool trans_b = false,
            kernels::Activation act = kernels::Activation::kNone,
            const OpContext& ctx = OpContext::serial(),
            DType out_dtype = DType::kF32, float act_absmax = -1.0f);

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

Tensor relu(const Tensor& x);
Tensor leaky_relu(const Tensor& x, float alpha);
Tensor sigmoid(const Tensor& x);
Tensor silu(const Tensor& x);  // x * sigmoid(x), Yolo V5's activation
Tensor tanh_op(const Tensor& x);
Tensor gelu(const Tensor& x);  // erf-based, as in BERT
Tensor erf_op(const Tensor& x);
Tensor sqrt_op(const Tensor& x);
Tensor exp_op(const Tensor& x);
Tensor neg(const Tensor& x);
Tensor identity(const Tensor& x);

/// Binary ops with NumPy-style broadcasting.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div_op(const Tensor& a, const Tensor& b);
Tensor pow_op(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Normalization and reductions
// ---------------------------------------------------------------------------

/// Inference-mode batch normalization over channel dim 1 of [N,C,...].
Tensor batch_norm(const Tensor& x, const Tensor& scale, const Tensor& bias,
                  const Tensor& mean, const Tensor& var, float epsilon = 1e-5f);

/// Layer normalization over the last dimension.
Tensor layer_norm(const Tensor& x, const Tensor& scale, const Tensor& bias,
                  float epsilon = 1e-5f);

/// Softmax along `axis`.
Tensor softmax(const Tensor& x, int axis = -1);

/// Mean over the given axes (keepdims).
Tensor reduce_mean(const Tensor& x, const std::vector<int>& axes);

// ---------------------------------------------------------------------------
// Shape / data movement
// ---------------------------------------------------------------------------

/// Concatenation along `axis`. All inputs must agree on other dims.
Tensor concat(const std::vector<Tensor>& inputs, int axis);

/// Slice along one axis: elements [begin, end) with step 1.
Tensor slice(const Tensor& x, int axis, std::int64_t begin, std::int64_t end);

/// Strided slice along one axis (step >= 1), as used by Yolo's Focus layer.
Tensor strided_slice(const Tensor& x, int axis, std::int64_t begin,
                     std::int64_t end, std::int64_t step);

/// Gathers rows: indices select along `axis`. Indices are rounded floats.
Tensor gather(const Tensor& x, const Tensor& indices, int axis);

/// Permutes dimensions.
Tensor transpose(const Tensor& x, const std::vector<int>& perm);

/// Reshape with a single optional -1 wildcard dim.
Tensor reshape(const Tensor& x, const std::vector<std::int64_t>& new_dims);

/// Flattens dims [axis..] into one: matches ONNX Flatten.
Tensor flatten(const Tensor& x, int axis = 1);

/// Returns the shape of x as a 1-D float tensor (ONNX Shape; float-encoded
/// because our runtime is single-dtype — values are exact for dims < 2^24).
Tensor shape_of(const Tensor& x);

/// Embedding lookup: table [V, D], ids [..] -> [.., D].
Tensor embedding(const Tensor& table, const Tensor& ids);

}  // namespace ramiel
