#include "graph/cost_model.h"

namespace ramiel {

std::int64_t CostModel::node_weight(const Node& node) const {
  switch (node.kind) {
    case OpKind::kConv2d: {
      // Kernel size comes from the "kernel" attribute when present (set by
      // all builders/importers); fall back to 3x3 cost otherwise.
      const std::int64_t k = node.attrs.get_int("kernel", 3);
      if (k >= 7) return conv_7x7;
      if (k >= 5) return conv_5x5;
      if (k >= 2) return conv_3x3;
      return conv_1x1;
    }
    case OpKind::kMatMul:
      return matmul;
    case OpKind::kGemm:
      return gemm;
    case OpKind::kMaxPool:
    case OpKind::kAvgPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kResize:
      return pool;
    case OpKind::kBatchNorm:
    case OpKind::kLayerNorm:
    case OpKind::kSoftmax:
      return norm;
    case OpKind::kReduceMean:
      return reduce;
    case OpKind::kEmbedding:
      return embedding;
    case OpKind::kConstant:
      return 0;
    default:
      if (op_is_data_movement(node.kind)) return data_movement;
      return elementwise;
  }
}

std::int64_t CostModel::total_weight(const Graph& graph) const {
  std::int64_t total = 0;
  for (const Node& n : graph.nodes()) {
    if (!n.dead) total += node_weight(n);
  }
  return total;
}

}  // namespace ramiel
