// The dataflow graph IR at the heart of the system.
//
// A Graph owns Nodes (operators) and Values (tensors flowing between them).
// Initializers (weights) are Values carrying constant data with no producer.
// Node-level edges are derived from value producer/consumer relationships.
//
// Passes may mark nodes dead (DCE, constant folding); `compacted()` produces
// a fresh graph without tombstones so downstream passes see dense ids.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/attr.h"
#include "graph/op_kind.h"
#include "tensor/tensor.h"

namespace ramiel {

using NodeId = std::int32_t;
using ValueId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// A tensor flowing through the graph (graph input, initializer or an
/// operator result).
struct Value {
  ValueId id = -1;
  std::string name;
  Shape shape;                       // filled by shape inference (or builder)
  NodeId producer = kNoNode;         // kNoNode for graph inputs/initializers
  std::vector<NodeId> consumers;     // nodes reading this value
  std::optional<Tensor> const_data;  // set for initializers / folded constants
  /// Storage dtype of the value at runtime. kF32 unless the quantize pass
  /// demotes the value (initializers carry their dtype in const_data too).
  DType dtype = DType::kF32;

  bool is_constant() const { return const_data.has_value(); }
};

/// One operator instance.
struct Node {
  NodeId id = -1;
  OpKind kind = OpKind::kIdentity;
  std::string name;
  std::vector<ValueId> inputs;
  std::vector<ValueId> outputs;
  Attrs attrs;
  bool dead = false;  // tombstone set by DCE / folding
};

/// Dataflow graph. Stable ids; nodes/values are never erased in place, only
/// tombstoned and later dropped by compacted().
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // -- construction ---------------------------------------------------------

  /// Adds a value; returns its id. Names must be unique and non-empty.
  ValueId add_value(const std::string& name, Shape shape = Shape{});

  /// Adds an initializer (constant value with data).
  ValueId add_initializer(const std::string& name, Tensor data);

  /// Adds a node reading `inputs`, producing fresh output values named
  /// `<name>_out<i>`. Returns the node id.
  NodeId add_node(OpKind kind, const std::string& name,
                  const std::vector<ValueId>& inputs, int num_outputs = 1,
                  Attrs attrs = {});

  /// Adds a node whose output values get the given explicit names (used by
  /// deserialization, where value names are fixed by the file).
  NodeId add_node_named_outputs(OpKind kind, const std::string& name,
                                const std::vector<ValueId>& inputs,
                                const std::vector<std::string>& output_names,
                                Attrs attrs = {});

  /// Marks a value as a graph input / graph output.
  void mark_input(ValueId v);
  void mark_output(ValueId v);

  // -- access ---------------------------------------------------------------

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Value& value(ValueId id);
  const Value& value(ValueId id) const;

  /// Looks up a value by name; kNoNode-like -1 when missing.
  ValueId find_value(const std::string& name) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& values() { return values_; }
  const std::vector<ValueId>& inputs() const { return inputs_; }
  const std::vector<ValueId>& outputs() const { return outputs_; }

  /// Number of live (non-tombstoned) nodes.
  int live_node_count() const;

  /// Node ids of the (unique) predecessors / successors of `id` among live
  /// nodes, derived from value dataflow.
  std::vector<NodeId> predecessors(NodeId id) const;
  std::vector<NodeId> successors(NodeId id) const;

  /// Live nodes in a topological order. Throws ValidationError on cycles.
  std::vector<NodeId> topo_order() const;

  /// Checks structural invariants (referenced ids valid, no cycles, every
  /// node input produced or constant/graph-input). Throws ValidationError.
  void validate() const;

  /// Returns a copy without dead nodes and without unreferenced values.
  /// Graph input values are kept even when unused.
  Graph compacted() const;

  // -- mutation helpers for passes -------------------------------------------

  /// Reroutes all consumers of value `from` to read value `to` instead, and
  /// transfers graph-output status.
  void replace_value_uses(ValueId from, ValueId to);

  /// Rewrites input slot `index` of node `id` to read `v`, keeping both
  /// values' consumer lists consistent (removes one entry from the old
  /// value, appends one to the new). Passes must use this — or
  /// replace_value_uses — instead of writing Node::inputs directly, or
  /// validate() will reject the stale consumer entries left behind.
  void replace_node_input(NodeId id, std::size_t index, ValueId v);

  /// Appends a new input slot reading `v` to node `id`, registering the
  /// consumer entry.
  void append_node_input(NodeId id, ValueId v);

  /// Tombstones a node and detaches it from its values' consumer lists.
  void kill_node(NodeId id);

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Value> values_;
  std::vector<ValueId> inputs_;
  std::vector<ValueId> outputs_;
  std::unordered_map<std::string, ValueId> value_by_name_;
};

}  // namespace ramiel
