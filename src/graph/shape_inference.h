// Best-effort static shape inference over the dataflow IR.
//
// Walks the graph in topological order and fills Value::shape for every
// value whose shape is statically determined by its node's inputs and
// attributes. Values whose shape depends on non-constant data (e.g. a
// Reshape whose target shape flows in at runtime) are left with an empty
// (rank-0, numel-1) placeholder until constant folding resolves them —
// rerunning inference after folding fills in more shapes.
#pragma once

#include "graph/graph.h"

namespace ramiel {

/// Infers shapes for all node outputs where possible. Graph inputs and
/// initializers must already carry shapes. Returns the number of values
/// whose shape was newly determined.
int infer_shapes(Graph& graph);

/// Throws ValidationError if any live node output still has an undetermined
/// shape (used by the executors, which need fully static shapes).
void require_static_shapes(const Graph& graph);

}  // namespace ramiel
