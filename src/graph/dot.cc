#include "graph/dot.h"

#include <array>
#include <sstream>

namespace ramiel {

std::string to_dot(const Graph& graph, const std::vector<int>& cluster_of) {
  static constexpr std::array<const char*, 10> kPalette = {
      "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
      "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00"};
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, style=filled, fillcolor=white];\n";
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    os << "  n" << n.id << " [label=\"" << op_kind_name(n.kind) << "\\n"
       << n.name << "\"";
    if (n.id < static_cast<NodeId>(cluster_of.size()) &&
        cluster_of[static_cast<std::size_t>(n.id)] >= 0) {
      const int c = cluster_of[static_cast<std::size_t>(n.id)];
      os << ", fillcolor=\"" << kPalette[static_cast<std::size_t>(c) % kPalette.size()]
         << "\", xlabel=\"C" << c << "\"";
    }
    os << "];\n";
  }
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    for (NodeId s : graph.successors(n.id)) {
      os << "  n" << n.id << " -> n" << s << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ramiel
