// Static cost model from the paper (§III-A):
//
//   "heavy DL operations like Conv, Matmul etc. having higher cost than
//    simpler ones. Also a Conv using a bigger kernel of size 7x7 or 5x5 is
//    assigned a higher cost compared to those of size 3x3 or 1x1.
//    Elementwise operations like Relu are assigned a cost of 1. [...]
//    We also add a unit cost for each graph edge when computing the CP."
//
// Weights are integers so Table-I-style summaries are deterministic.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace ramiel {

/// Tunable static weights. Defaults are calibrated so the Table I
/// parallelism factors of the eight evaluation models land near the paper's.
struct CostModel {
  std::int64_t conv_7x7 = 14;
  std::int64_t conv_5x5 = 10;
  std::int64_t conv_3x3 = 6;
  std::int64_t conv_1x1 = 2;
  std::int64_t matmul = 200;     // transformer-scale matmuls (BERT)
  std::int64_t gemm = 12;        // classifier-head style GEMMs
  std::int64_t pool = 2;
  std::int64_t norm = 2;         // batch/layer norm, softmax
  std::int64_t reduce = 2;
  std::int64_t embedding = 4;
  std::int64_t data_movement = 1;
  std::int64_t elementwise = 1;
  std::int64_t edge = 1;         // per-edge overhead on the critical path

  /// Static weight of one node.
  std::int64_t node_weight(const Node& node) const;

  /// Sum of node_weight over live nodes ("Wt. Cost of Nodes" in Table I).
  std::int64_t total_weight(const Graph& graph) const;
};

}  // namespace ramiel
