// Operator vocabulary of the dataflow IR. This is the ONNX subset the eight
// evaluation models need (plus a couple of PyTorch-flavored fusions like Silu
// that Yolo V5 exports).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace ramiel {

enum class OpKind {
  // Sources
  kConstant,
  // Convolutions / pooling
  kConv2d,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kResize,
  // Dense products
  kMatMul,
  kGemm,
  // Activations / unary elementwise
  kRelu,
  kLeakyRelu,
  kSigmoid,
  kSilu,
  kTanh,
  kGelu,
  kErf,
  kSqrt,
  kExp,
  kNeg,
  kIdentity,
  // Binary elementwise
  kAdd,
  kSub,
  kMul,
  kDiv,
  kPow,
  // Normalization / reductions
  kBatchNorm,
  kLayerNorm,
  kSoftmax,
  kReduceMean,
  // Shape & data movement
  kConcat,
  kSlice,
  kGather,
  kTranspose,
  kReshape,
  kFlatten,
  kShape,
  kUnsqueeze,
  kSqueeze,
  // Lookup
  kEmbedding,
};

/// Canonical (ONNX-style) name, e.g. "Conv", "Relu", "MatMul".
std::string_view op_kind_name(OpKind kind);

/// Parses an op name back to its kind; nullopt for unknown names.
std::optional<OpKind> op_kind_from_name(std::string_view name);

/// PyTorch expression the code generator emits for this op (e.g.
/// "torch.nn.functional.conv2d"). Empty for ops generated structurally.
std::string_view op_kind_torch_name(OpKind kind);

/// True for pure unary/binary elementwise ops (static weight 1 in the
/// paper's cost model).
bool op_is_elementwise(OpKind kind);

/// True for shape/data-movement ops that do no arithmetic.
bool op_is_data_movement(OpKind kind);

/// Number of ops in the enum (for iteration in tests).
int op_kind_count();

}  // namespace ramiel
