// Single-node evaluation: maps an IR node + input tensors to the tensor
// kernels. This is the one place attribute conventions are interpreted for
// execution; the sequential executor, the cluster runtime and the constant
// folder all call through here, so they cannot diverge.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "tensor/ops.h"

namespace ramiel {

/// Evaluates `node` on `inputs` (one tensor per node input, in order).
/// Returns one tensor per node output. Throws Error on arity/shape problems.
std::vector<Tensor> eval_node(const Node& node,
                              const std::vector<Tensor>& inputs,
                              const OpContext& ctx = OpContext::serial());

}  // namespace ramiel
