#include "graph/op_eval.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

void expect_arity(const Node& n, std::size_t got, std::size_t min_want,
                  std::size_t max_want) {
  RAMIEL_CHECK(got >= min_want && got <= max_want,
               str_cat("node '", n.name, "' (", op_kind_name(n.kind),
                       ") expected ", min_want, "..", max_want,
                       " inputs, got ", got));
}

/// Fused-epilogue activation recorded on Conv2d/Gemm nodes by the
/// activation-fusion pass ("" / "relu" / "sigmoid").
kernels::Activation fused_activation(const Node& n) {
  if (!n.attrs.has("act")) return kernels::Activation::kNone;
  const std::string& act = n.attrs.get_str("act");
  if (act == "relu") return kernels::Activation::kRelu;
  if (act == "sigmoid") return kernels::Activation::kSigmoid;
  RAMIEL_CHECK(act.empty(), str_cat("node '", n.name,
                                    "' has unknown fused activation '", act,
                                    "'"));
  return kernels::Activation::kNone;
}

std::vector<std::int64_t> ints_from_tensor(const Tensor& t) {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(t.numel()));
  for (float f : t.data()) {
    out.push_back(static_cast<std::int64_t>(std::llround(f)));
  }
  return out;
}

/// Storage dtype the quantize pass assigned to this node's outputs ("sdtype"
/// attribute; absent means f32).
DType node_sdtype(const Node& n) {
  if (!n.attrs.has("sdtype")) return DType::kF32;
  const std::string& s = n.attrs.get_str("sdtype");
  const std::optional<DType> d = parse_dtype(s);
  RAMIEL_CHECK(d.has_value(), str_cat("node '", n.name,
                                      "' has unknown sdtype '", s, "'"));
  return *d;
}

/// Calibrated activation absmax recorded by the calibration tool
/// ("aq_scale" attribute); negative means measure dynamically per call.
float node_aq_scale(const Node& n) {
  return n.attrs.has("aq_scale")
             ? static_cast<float>(n.attrs.get_float("aq_scale"))
             : -1.0f;
}

/// Ops that forward their input storage unchanged (dtype-polymorphic by
/// construction — they only touch shape metadata).
bool is_alias_kind(OpKind k) {
  switch (k) {
    case OpKind::kIdentity:
    case OpKind::kReshape:
    case OpKind::kFlatten:
    case OpKind::kSqueeze:
    case OpKind::kUnsqueeze:
    case OpKind::kShape:
      return true;
    default:
      return false;
  }
}

std::vector<Tensor> eval_node_base(const Node& n, const std::vector<Tensor>& in,
                                   const OpContext& ctx) {
  switch (n.kind) {
    case OpKind::kConstant:
      RAMIEL_UNREACHABLE(
          "Constant nodes carry data on their output value and are never "
          "evaluated");
    case OpKind::kConv2d: {
      expect_arity(n, in.size(), 2, 3);
      Conv2dParams p;
      p.stride_h = p.stride_w = static_cast<int>(n.attrs.get_int("stride", 1));
      p.pad_h = p.pad_w = static_cast<int>(n.attrs.get_int("pad", 0));
      p.dilation_h = p.dilation_w =
          static_cast<int>(n.attrs.get_int("dilation", 1));
      p.groups = static_cast<int>(n.attrs.get_int("groups", 1));
      p.act = fused_activation(n);
      p.out_dtype = node_sdtype(n);
      p.act_absmax = node_aq_scale(n);
      std::optional<Tensor> bias;
      if (in.size() == 3) bias = in[2];
      return {conv2d(in[0], in[1], bias, p, ctx)};
    }
    case OpKind::kMaxPool:
    case OpKind::kAvgPool: {
      expect_arity(n, in.size(), 1, 1);
      Pool2dParams p;
      p.kernel_h = p.kernel_w = static_cast<int>(n.attrs.get_int("kernel"));
      p.stride_h = p.stride_w =
          static_cast<int>(n.attrs.get_int("stride", p.kernel_h));
      p.pad_h = p.pad_w = static_cast<int>(n.attrs.get_int("pad", 0));
      p.count_include_pad = n.attrs.get_int("count_include_pad", 0) != 0;
      return {n.kind == OpKind::kMaxPool ? max_pool2d(in[0], p, ctx)
                                         : avg_pool2d(in[0], p, ctx)};
    }
    case OpKind::kGlobalAvgPool:
      expect_arity(n, in.size(), 1, 1);
      return {global_avg_pool(in[0], ctx)};
    case OpKind::kResize:
      expect_arity(n, in.size(), 1, 1);
      return {resize_nearest(in[0], static_cast<int>(n.attrs.get_int("scale")),
                             ctx)};
    case OpKind::kMatMul:
      expect_arity(n, in.size(), 2, 2);
      return {matmul(in[0], in[1], ctx, node_sdtype(n), node_aq_scale(n))};
    case OpKind::kGemm: {
      expect_arity(n, in.size(), 2, 3);
      std::optional<Tensor> bias;
      if (in.size() == 3) bias = in[2];
      return {gemm(in[0], in[1], bias, n.attrs.get_int("trans_a", 0) != 0,
                   n.attrs.get_int("trans_b", 0) != 0, fused_activation(n),
                   ctx, node_sdtype(n), node_aq_scale(n))};
    }
    case OpKind::kRelu:
      expect_arity(n, in.size(), 1, 1);
      return {relu(in[0])};
    case OpKind::kLeakyRelu:
      expect_arity(n, in.size(), 1, 1);
      return {leaky_relu(in[0],
                         static_cast<float>(n.attrs.get_float("alpha", 0.01)))};
    case OpKind::kSigmoid:
      expect_arity(n, in.size(), 1, 1);
      return {sigmoid(in[0])};
    case OpKind::kSilu:
      expect_arity(n, in.size(), 1, 1);
      return {silu(in[0])};
    case OpKind::kTanh:
      expect_arity(n, in.size(), 1, 1);
      return {tanh_op(in[0])};
    case OpKind::kGelu:
      expect_arity(n, in.size(), 1, 1);
      return {gelu(in[0])};
    case OpKind::kErf:
      expect_arity(n, in.size(), 1, 1);
      return {erf_op(in[0])};
    case OpKind::kSqrt:
      expect_arity(n, in.size(), 1, 1);
      return {sqrt_op(in[0])};
    case OpKind::kExp:
      expect_arity(n, in.size(), 1, 1);
      return {exp_op(in[0])};
    case OpKind::kNeg:
      expect_arity(n, in.size(), 1, 1);
      return {neg(in[0])};
    case OpKind::kIdentity:
      expect_arity(n, in.size(), 1, 1);
      return {identity(in[0])};
    case OpKind::kAdd:
      expect_arity(n, in.size(), 2, 2);
      return {add(in[0], in[1])};
    case OpKind::kSub:
      expect_arity(n, in.size(), 2, 2);
      return {sub(in[0], in[1])};
    case OpKind::kMul:
      expect_arity(n, in.size(), 2, 2);
      return {mul(in[0], in[1])};
    case OpKind::kDiv:
      expect_arity(n, in.size(), 2, 2);
      return {div_op(in[0], in[1])};
    case OpKind::kPow:
      expect_arity(n, in.size(), 2, 2);
      return {pow_op(in[0], in[1])};
    case OpKind::kBatchNorm:
      expect_arity(n, in.size(), 5, 5);
      return {batch_norm(in[0], in[1], in[2], in[3], in[4],
                         static_cast<float>(n.attrs.get_float("epsilon", 1e-5)))};
    case OpKind::kLayerNorm:
      expect_arity(n, in.size(), 3, 3);
      return {layer_norm(in[0], in[1], in[2],
                         static_cast<float>(n.attrs.get_float("epsilon", 1e-5)))};
    case OpKind::kSoftmax:
      expect_arity(n, in.size(), 1, 1);
      return {softmax(in[0], static_cast<int>(n.attrs.get_int("axis", -1)))};
    case OpKind::kReduceMean: {
      expect_arity(n, in.size(), 1, 1);
      std::vector<int> axes;
      for (std::int64_t a : n.attrs.get_ints("axes")) {
        axes.push_back(static_cast<int>(a));
      }
      return {reduce_mean(in[0], axes)};
    }
    case OpKind::kConcat:
      RAMIEL_CHECK(!in.empty(), "Concat requires inputs");
      return {concat(in, static_cast<int>(n.attrs.get_int("axis")))};
    case OpKind::kSlice:
      expect_arity(n, in.size(), 1, 1);
      return {strided_slice(in[0], static_cast<int>(n.attrs.get_int("axis")),
                            n.attrs.get_int("begin"), n.attrs.get_int("end"),
                            n.attrs.get_int("step", 1))};
    case OpKind::kGather:
      expect_arity(n, in.size(), 2, 2);
      return {gather(in[0], in[1], static_cast<int>(n.attrs.get_int("axis", 0)))};
    case OpKind::kTranspose: {
      expect_arity(n, in.size(), 1, 1);
      std::vector<int> perm;
      for (std::int64_t p : n.attrs.get_ints("perm")) {
        perm.push_back(static_cast<int>(p));
      }
      return {transpose(in[0], perm)};
    }
    case OpKind::kReshape: {
      expect_arity(n, in.size(), 1, 2);
      std::vector<std::int64_t> target;
      if (n.attrs.has("shape")) {
        target = n.attrs.get_ints("shape");
      } else {
        RAMIEL_CHECK(in.size() == 2,
                     "Reshape needs a shape attribute or a shape input");
        target = ints_from_tensor(in[1]);
      }
      return {reshape(in[0], target)};
    }
    case OpKind::kFlatten:
      expect_arity(n, in.size(), 1, 1);
      return {flatten(in[0], static_cast<int>(n.attrs.get_int("axis", 1)))};
    case OpKind::kShape:
      expect_arity(n, in.size(), 1, 1);
      return {shape_of(in[0])};
    case OpKind::kUnsqueeze: {
      expect_arity(n, in.size(), 1, 1);
      std::vector<std::int64_t> dims = in[0].shape().dims();
      auto axes = n.attrs.get_ints("axes");
      std::sort(axes.begin(), axes.end());
      for (std::int64_t a : axes) {
        std::int64_t ax =
            a < 0 ? a + static_cast<std::int64_t>(dims.size()) + 1 : a;
        dims.insert(dims.begin() + static_cast<std::ptrdiff_t>(ax), 1);
      }
      return {in[0].reshaped(Shape(std::move(dims)))};
    }
    case OpKind::kSqueeze: {
      expect_arity(n, in.size(), 1, 1);
      const Shape& is = in[0].shape();
      std::vector<bool> drop(static_cast<std::size_t>(is.rank()), false);
      for (std::int64_t a : n.attrs.get_ints("axes")) {
        drop[static_cast<std::size_t>(
            is.normalize_axis(static_cast<int>(a)))] = true;
      }
      std::vector<std::int64_t> dims;
      for (int d = 0; d < is.rank(); ++d) {
        if (!drop[static_cast<std::size_t>(d)]) dims.push_back(is.dim(d));
      }
      return {in[0].reshaped(Shape(std::move(dims)))};
    }
    case OpKind::kEmbedding:
      expect_arity(n, in.size(), 2, 2);
      return {embedding(in[0], in[1])};
  }
  RAMIEL_UNREACHABLE("unhandled op kind in eval_node");
}

}  // namespace

// Storage-dtype boundary around the op implementations. Three classes of
// nodes:
//   - Conv2d/Gemm/MatMul consume f16/bf16/i8 storage natively (convert-on-
//     pack / quantized GEMM) and write their "sdtype" directly — pass
//     through untouched;
//   - alias ops only move shape metadata and forward any storage (the
//     quantize pass keeps alias chains dtype-uniform);
//   - everything else computes in fp32: low-precision inputs widen first
//     (with the alloc sink bypassed so temporaries never claim a planned
//     slot) and f32 outputs narrow to the node's sdtype afterwards — that
//     cast runs *inside* the executor's sink scope, so it lands in the
//     value's planned arena slot.
std::vector<Tensor> eval_node(const Node& n, const std::vector<Tensor>& in,
                              const OpContext& ctx) {
  if (n.kind == OpKind::kConv2d || n.kind == OpKind::kGemm ||
      n.kind == OpKind::kMatMul || is_alias_kind(n.kind)) {
    return eval_node_base(n, in, ctx);
  }
  const DType sd = node_sdtype(n);
  bool any_lowp = false;
  for (const Tensor& t : in) any_lowp |= t.dtype() != DType::kF32;
  if (!any_lowp && sd == DType::kF32) return eval_node_base(n, in, ctx);

  std::vector<Tensor> widened;
  if (any_lowp) {
    widened.reserve(in.size());
    AllocSink* prev = set_thread_alloc_sink(nullptr);
    for (const Tensor& t : in) {
      if (t.dtype() == DType::kF32) {
        widened.push_back(t);
      } else if (t.dtype() == DType::kI8) {
        widened.push_back(t.dequantize());
      } else {
        widened.push_back(t.cast(DType::kF32));
      }
    }
    set_thread_alloc_sink(prev);
  }
  std::vector<Tensor> out = eval_node_base(n, any_lowp ? widened : in, ctx);
  if (sd != DType::kF32) {
    for (Tensor& t : out) {
      if (t.dtype() == DType::kF32) t = t.cast(sd);
    }
  }
  return out;
}

}  // namespace ramiel
