// Node attributes: a small ordered map from string keys to typed values.
// Attribute types cover what the ONNX subset needs: int, float, string and
// int-list. Access is checked — asking for a missing or mistyped attribute is a
// caller error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

using AttrValue =
    std::variant<std::int64_t, double, std::string, std::vector<std::int64_t>>;

/// Ordered attribute map (ordered so serialization is deterministic).
class Attrs {
 public:
  Attrs() = default;

  Attrs& set(const std::string& key, std::int64_t v) {
    map_[key] = v;
    return *this;
  }
  Attrs& set(const std::string& key, int v) {
    return set(key, static_cast<std::int64_t>(v));
  }
  Attrs& set(const std::string& key, double v) {
    map_[key] = v;
    return *this;
  }
  Attrs& set(const std::string& key, std::string v) {
    map_[key] = std::move(v);
    return *this;
  }
  Attrs& set(const std::string& key, std::vector<std::int64_t> v) {
    map_[key] = std::move(v);
    return *this;
  }

  bool has(const std::string& key) const { return map_.count(key) != 0; }

  std::int64_t get_int(const std::string& key) const {
    return get<std::int64_t>(key);
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    auto it = map_.find(key);
    if (it == map_.end()) return fallback;
    return std::get<std::int64_t>(it->second);
  }
  double get_float(const std::string& key) const { return get<double>(key); }
  double get_float(const std::string& key, double fallback) const {
    auto it = map_.find(key);
    if (it == map_.end()) return fallback;
    return std::get<double>(it->second);
  }
  const std::string& get_str(const std::string& key) const {
    return get<std::string>(key);
  }
  const std::vector<std::int64_t>& get_ints(const std::string& key) const {
    return get<std::vector<std::int64_t>>(key);
  }

  const std::map<std::string, AttrValue>& entries() const { return map_; }
  std::size_t size() const { return map_.size(); }

 private:
  template <typename T>
  const T& get(const std::string& key) const {
    auto it = map_.find(key);
    RAMIEL_CHECK(it != map_.end(), str_cat("missing attribute '", key, "'"));
    const T* v = std::get_if<T>(&it->second);
    RAMIEL_CHECK(v != nullptr, str_cat("attribute '", key, "' has wrong type"));
    return *v;
  }

  std::map<std::string, AttrValue> map_;
};

}  // namespace ramiel
