#include "graph/shape_inference.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

// We reserve the empty (rank-0) shape as "unknown". True scalars only occur
// as constants, which always carry explicit shapes from their Tensor.
bool known(const Value& v) { return v.shape.rank() > 0 || v.is_constant(); }

std::optional<Shape> broadcast(const Shape& a, const Shape& b) {
  int rank = std::max(a.rank(), b.rank());
  std::vector<std::int64_t> dims(static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    std::int64_t da = i < a.rank() ? a.dim(a.rank() - 1 - i) : 1;
    std::int64_t db = i < b.rank() ? b.dim(b.rank() - 1 - i) : 1;
    if (da != db && da != 1 && db != 1) return std::nullopt;
    dims[static_cast<std::size_t>(rank - 1 - i)] = std::max(da, db);
  }
  return Shape(std::move(dims));
}

/// Infers the output shapes of one node. Returns empty vector when the
/// shape cannot (yet) be determined statically.
std::vector<Shape> infer_node(const Graph& g, const Node& n) {
  auto in_shape = [&](std::size_t i) -> const Shape& {
    return g.value(n.inputs[i]).shape;
  };
  auto in_known = [&](std::size_t i) {
    return i < n.inputs.size() && known(g.value(n.inputs[i]));
  };
  auto in_const = [&](std::size_t i) -> const Tensor* {
    if (i >= n.inputs.size()) return nullptr;
    const Value& v = g.value(n.inputs[i]);
    return v.const_data ? &*v.const_data : nullptr;
  };

  switch (n.kind) {
    case OpKind::kConstant: {
      const Value& out = g.value(n.outputs[0]);
      RAMIEL_CHECK(out.is_constant(), "Constant node output must carry data");
      return {out.const_data->shape()};
    }
    case OpKind::kConv2d: {
      if (!in_known(0) || !in_known(1)) return {};
      const Shape& is = in_shape(0);
      const Shape& ws = in_shape(1);
      if (is.rank() != 4 || ws.rank() != 4) return {};
      const std::int64_t stride = n.attrs.get_int("stride", 1);
      const std::int64_t pad = n.attrs.get_int("pad", 0);
      const std::int64_t dil = n.attrs.get_int("dilation", 1);
      const std::int64_t R = ws.dim(2), S = ws.dim(3);
      const std::int64_t OH = (is.dim(2) + 2 * pad - dil * (R - 1) - 1) / stride + 1;
      const std::int64_t OW = (is.dim(3) + 2 * pad - dil * (S - 1) - 1) / stride + 1;
      return {Shape{is.dim(0), ws.dim(0), OH, OW}};
    }
    case OpKind::kMaxPool:
    case OpKind::kAvgPool: {
      if (!in_known(0)) return {};
      const Shape& is = in_shape(0);
      if (is.rank() != 4) return {};
      const std::int64_t k = n.attrs.get_int("kernel");
      const std::int64_t stride = n.attrs.get_int("stride", k);
      const std::int64_t pad = n.attrs.get_int("pad", 0);
      const std::int64_t OH = (is.dim(2) + 2 * pad - k) / stride + 1;
      const std::int64_t OW = (is.dim(3) + 2 * pad - k) / stride + 1;
      return {Shape{is.dim(0), is.dim(1), OH, OW}};
    }
    case OpKind::kGlobalAvgPool: {
      if (!in_known(0)) return {};
      const Shape& is = in_shape(0);
      if (is.rank() != 4) return {};
      return {Shape{is.dim(0), is.dim(1), 1, 1}};
    }
    case OpKind::kResize: {
      if (!in_known(0)) return {};
      const Shape& is = in_shape(0);
      if (is.rank() != 4) return {};
      const std::int64_t s = n.attrs.get_int("scale");
      return {Shape{is.dim(0), is.dim(1), is.dim(2) * s, is.dim(3) * s}};
    }
    case OpKind::kMatMul: {
      if (!in_known(0) || !in_known(1)) return {};
      const Shape& a = in_shape(0);
      const Shape& b = in_shape(1);
      if (a.rank() < 2 || b.rank() < 2) return {};
      const int brank = std::max(a.rank(), b.rank()) - 2;
      std::vector<std::int64_t> dims;
      for (int i = brank - 1; i >= 0; --i) {
        std::int64_t da = (i < a.rank() - 2) ? a.dim(a.rank() - 3 - i) : 1;
        std::int64_t db = (i < b.rank() - 2) ? b.dim(b.rank() - 3 - i) : 1;
        dims.push_back(std::max(da, db));
      }
      dims.push_back(a.dim(-2));
      dims.push_back(b.dim(-1));
      return {Shape(std::move(dims))};
    }
    case OpKind::kGemm: {
      if (!in_known(0) || !in_known(1)) return {};
      const bool ta = n.attrs.get_int("trans_a", 0) != 0;
      const bool tb = n.attrs.get_int("trans_b", 0) != 0;
      const Shape& a = in_shape(0);
      const Shape& b = in_shape(1);
      return {Shape{ta ? a.dim(1) : a.dim(0), tb ? b.dim(0) : b.dim(1)}};
    }
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kPow: {
      if (!in_known(0) || !in_known(1)) return {};
      auto s = broadcast(in_shape(0), in_shape(1));
      if (!s) return {};
      return {*s};
    }
    case OpKind::kBatchNorm:
    case OpKind::kLayerNorm:
    case OpKind::kSoftmax:
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kSilu:
    case OpKind::kTanh:
    case OpKind::kGelu:
    case OpKind::kErf:
    case OpKind::kSqrt:
    case OpKind::kExp:
    case OpKind::kNeg:
    case OpKind::kIdentity: {
      if (!in_known(0)) return {};
      return {in_shape(0)};
    }
    case OpKind::kReduceMean: {
      if (!in_known(0)) return {};
      const Shape& is = in_shape(0);
      std::vector<std::int64_t> dims = is.dims();
      for (std::int64_t a : n.attrs.get_ints("axes")) {
        int ax = is.normalize_axis(static_cast<int>(a));
        dims[static_cast<std::size_t>(ax)] = 1;
      }
      return {Shape(std::move(dims))};
    }
    case OpKind::kConcat: {
      const int nin = static_cast<int>(n.inputs.size());
      for (int i = 0; i < nin; ++i) {
        if (!in_known(static_cast<std::size_t>(i))) return {};
      }
      const Shape& first = in_shape(0);
      const int ax = first.normalize_axis(
          static_cast<int>(n.attrs.get_int("axis")));
      std::vector<std::int64_t> dims = first.dims();
      std::int64_t total = 0;
      for (int i = 0; i < nin; ++i) {
        total += in_shape(static_cast<std::size_t>(i)).dim(ax);
      }
      dims[static_cast<std::size_t>(ax)] = total;
      return {Shape(std::move(dims))};
    }
    case OpKind::kSlice: {
      if (!in_known(0)) return {};
      const Shape& is = in_shape(0);
      const int ax = is.normalize_axis(static_cast<int>(n.attrs.get_int("axis")));
      std::int64_t begin = n.attrs.get_int("begin");
      std::int64_t end = n.attrs.get_int("end");
      const std::int64_t step = n.attrs.get_int("step", 1);
      const std::int64_t dim = is.dim(ax);
      if (begin < 0) begin += dim;
      if (end < 0) end += dim;
      begin = std::clamp<std::int64_t>(begin, 0, dim);
      end = std::clamp<std::int64_t>(end, 0, dim);
      std::vector<std::int64_t> dims = is.dims();
      dims[static_cast<std::size_t>(ax)] =
          begin < end ? (end - begin + step - 1) / step : 0;
      return {Shape(std::move(dims))};
    }
    case OpKind::kGather: {
      if (!in_known(0) || !in_known(1)) return {};
      const Shape& is = in_shape(0);
      const Shape& idx = in_shape(1);
      const int ax = is.normalize_axis(static_cast<int>(n.attrs.get_int("axis", 0)));
      std::vector<std::int64_t> dims;
      for (int d = 0; d < ax; ++d) dims.push_back(is.dim(d));
      for (std::int64_t d : idx.dims()) dims.push_back(d);
      for (int d = ax + 1; d < is.rank(); ++d) dims.push_back(is.dim(d));
      return {Shape(std::move(dims))};
    }
    case OpKind::kTranspose: {
      if (!in_known(0)) return {};
      const Shape& is = in_shape(0);
      const auto& perm = n.attrs.get_ints("perm");
      if (static_cast<int>(perm.size()) != is.rank()) return {};
      std::vector<std::int64_t> dims;
      dims.reserve(perm.size());
      for (std::int64_t p : perm) dims.push_back(is.dim(static_cast<int>(p)));
      return {Shape(std::move(dims))};
    }
    case OpKind::kReshape: {
      if (!in_known(0)) return {};
      std::vector<std::int64_t> target;
      if (n.attrs.has("shape")) {
        target = n.attrs.get_ints("shape");
      } else if (const Tensor* t = in_const(1)) {
        for (float f : t->data()) {
          target.push_back(static_cast<std::int64_t>(std::llround(f)));
        }
      } else {
        return {};  // data-dependent reshape; resolved after folding
      }
      const Shape& is = in_shape(0);
      std::int64_t knownp = 1;
      int wild = -1;
      for (std::size_t i = 0; i < target.size(); ++i) {
        if (target[i] == -1) {
          wild = static_cast<int>(i);
        } else if (target[i] == 0) {
          target[i] = is.dim(static_cast<int>(i));
          knownp *= target[i];
        } else {
          knownp *= target[i];
        }
      }
      if (wild >= 0) {
        if (knownp == 0 || is.numel() % knownp != 0) return {};
        target[static_cast<std::size_t>(wild)] = is.numel() / knownp;
      }
      return {Shape(std::move(target))};
    }
    case OpKind::kFlatten: {
      if (!in_known(0)) return {};
      const Shape& is = in_shape(0);
      const int ax = static_cast<int>(n.attrs.get_int("axis", 1));
      std::int64_t outer = 1, inner = 1;
      for (int d = 0; d < ax; ++d) outer *= is.dim(d);
      for (int d = ax; d < is.rank(); ++d) inner *= is.dim(d);
      return {Shape{outer, inner}};
    }
    case OpKind::kShape: {
      if (!in_known(0)) return {};
      return {Shape{in_shape(0).rank()}};
    }
    case OpKind::kUnsqueeze: {
      if (!in_known(0)) return {};
      std::vector<std::int64_t> dims = in_shape(0).dims();
      auto axes = n.attrs.get_ints("axes");
      std::sort(axes.begin(), axes.end());
      for (std::int64_t a : axes) {
        std::int64_t ax = a < 0 ? a + static_cast<std::int64_t>(dims.size()) + 1 : a;
        RAMIEL_CHECK(ax >= 0 && ax <= static_cast<std::int64_t>(dims.size()),
                     "unsqueeze axis out of range");
        dims.insert(dims.begin() + static_cast<std::ptrdiff_t>(ax), 1);
      }
      return {Shape(std::move(dims))};
    }
    case OpKind::kSqueeze: {
      if (!in_known(0)) return {};
      const Shape& is = in_shape(0);
      std::vector<bool> drop(static_cast<std::size_t>(is.rank()), false);
      for (std::int64_t a : n.attrs.get_ints("axes")) {
        drop[static_cast<std::size_t>(is.normalize_axis(static_cast<int>(a)))] =
            true;
      }
      std::vector<std::int64_t> dims;
      for (int d = 0; d < is.rank(); ++d) {
        if (!drop[static_cast<std::size_t>(d)]) dims.push_back(is.dim(d));
      }
      return {Shape(std::move(dims))};
    }
    case OpKind::kEmbedding: {
      if (!in_known(0) || !in_known(1)) return {};
      const Shape& table = in_shape(0);
      std::vector<std::int64_t> dims = in_shape(1).dims();
      dims.push_back(table.dim(1));
      return {Shape(std::move(dims))};
    }
  }
  return {};
}

}  // namespace

int infer_shapes(Graph& graph) {
  int filled = 0;
  for (NodeId id : graph.topo_order()) {
    const Node& n = graph.node(id);
    std::vector<Shape> shapes = infer_node(graph, n);
    if (shapes.empty()) continue;
    RAMIEL_CHECK(shapes.size() == n.outputs.size(),
                 str_cat("inference produced wrong output count for node '",
                         n.name, "'"));
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      Value& v = graph.value(n.outputs[i]);
      if (!known(v)) {
        v.shape = shapes[i];
        ++filled;
      }
    }
  }
  return filled;
}

void require_static_shapes(const Graph& graph) {
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    for (ValueId out : n.outputs) {
      const Value& v = graph.value(out);
      if (!known(v)) {
        throw ValidationError(str_cat("value '", v.name, "' (node '", n.name,
                                      "') has no static shape"));
      }
    }
  }
}

}  // namespace ramiel
