#include "graph/graph.h"

#include <algorithm>
#include <deque>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

ValueId Graph::add_value(const std::string& name, Shape shape) {
  RAMIEL_CHECK(!name.empty(), "value name must be non-empty");
  RAMIEL_CHECK(value_by_name_.count(name) == 0,
               str_cat("duplicate value name '", name, "'"));
  Value v;
  v.id = static_cast<ValueId>(values_.size());
  v.name = name;
  v.shape = std::move(shape);
  values_.push_back(std::move(v));
  value_by_name_.emplace(name, values_.back().id);
  return values_.back().id;
}

ValueId Graph::add_initializer(const std::string& name, Tensor data) {
  ValueId id = add_value(name, data.shape());
  values_[static_cast<std::size_t>(id)].dtype = data.dtype();
  values_[static_cast<std::size_t>(id)].const_data = std::move(data);
  return id;
}

NodeId Graph::add_node(OpKind kind, const std::string& name,
                       const std::vector<ValueId>& inputs, int num_outputs,
                       Attrs attrs) {
  RAMIEL_CHECK(num_outputs >= 1, "node must produce at least one output");
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.kind = kind;
  n.name = name.empty() ? str_cat(op_kind_name(kind), "_", n.id) : name;
  n.attrs = std::move(attrs);
  for (ValueId in : inputs) {
    RAMIEL_CHECK(in >= 0 && in < static_cast<ValueId>(values_.size()),
                 str_cat("node '", n.name, "' references invalid value ", in));
    n.inputs.push_back(in);
    values_[static_cast<std::size_t>(in)].consumers.push_back(n.id);
  }
  for (int i = 0; i < num_outputs; ++i) {
    const std::string out_name =
        num_outputs == 1 ? str_cat(n.name, "_out") : str_cat(n.name, "_out", i);
    ValueId out = add_value(out_name);
    values_[static_cast<std::size_t>(out)].producer = n.id;
    n.outputs.push_back(out);
  }
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

NodeId Graph::add_node_named_outputs(OpKind kind, const std::string& name,
                                     const std::vector<ValueId>& inputs,
                                     const std::vector<std::string>& output_names,
                                     Attrs attrs) {
  RAMIEL_CHECK(!output_names.empty(), "node must produce at least one output");
  NodeId id = add_node(kind, name, inputs,
                       static_cast<int>(output_names.size()), std::move(attrs));
  Node& n = nodes_[static_cast<std::size_t>(id)];
  for (std::size_t i = 0; i < output_names.size(); ++i) {
    Value& v = values_[static_cast<std::size_t>(n.outputs[i])];
    if (v.name == output_names[i]) continue;  // placeholder already matches
    RAMIEL_CHECK(value_by_name_.count(output_names[i]) == 0,
                 str_cat("duplicate value name '", output_names[i], "'"));
    value_by_name_.erase(v.name);
    v.name = output_names[i];
    value_by_name_.emplace(v.name, v.id);
  }
  return id;
}

void Graph::mark_input(ValueId v) {
  RAMIEL_CHECK(v >= 0 && v < static_cast<ValueId>(values_.size()),
               "mark_input: invalid value id");
  RAMIEL_CHECK(values_[static_cast<std::size_t>(v)].producer == kNoNode,
               "graph input cannot have a producer");
  inputs_.push_back(v);
}

void Graph::mark_output(ValueId v) {
  RAMIEL_CHECK(v >= 0 && v < static_cast<ValueId>(values_.size()),
               "mark_output: invalid value id");
  outputs_.push_back(v);
}

Node& Graph::node(NodeId id) {
  RAMIEL_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
               str_cat("invalid node id ", id));
  return nodes_[static_cast<std::size_t>(id)];
}

const Node& Graph::node(NodeId id) const {
  return const_cast<Graph*>(this)->node(id);
}

Value& Graph::value(ValueId id) {
  RAMIEL_CHECK(id >= 0 && id < static_cast<ValueId>(values_.size()),
               str_cat("invalid value id ", id));
  return values_[static_cast<std::size_t>(id)];
}

const Value& Graph::value(ValueId id) const {
  return const_cast<Graph*>(this)->value(id);
}

ValueId Graph::find_value(const std::string& name) const {
  auto it = value_by_name_.find(name);
  return it == value_by_name_.end() ? -1 : it->second;
}

int Graph::live_node_count() const {
  int n = 0;
  for (const Node& node : nodes_) {
    if (!node.dead) ++n;
  }
  return n;
}

std::vector<NodeId> Graph::predecessors(NodeId id) const {
  std::vector<NodeId> out;
  for (ValueId in : node(id).inputs) {
    const NodeId p = value(in).producer;
    if (p != kNoNode && !node(p).dead &&
        std::find(out.begin(), out.end(), p) == out.end()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<NodeId> Graph::successors(NodeId id) const {
  std::vector<NodeId> out;
  for (ValueId ov : node(id).outputs) {
    for (NodeId c : value(ov).consumers) {
      if (!node(c).dead && std::find(out.begin(), out.end(), c) == out.end()) {
        out.push_back(c);
      }
    }
  }
  return out;
}

std::vector<NodeId> Graph::topo_order() const {
  std::vector<int> indegree(nodes_.size(), 0);
  std::deque<NodeId> ready;
  int live = 0;
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    ++live;
    indegree[static_cast<std::size_t>(n.id)] =
        static_cast<int>(predecessors(n.id).size());
    if (indegree[static_cast<std::size_t>(n.id)] == 0) ready.push_back(n.id);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(live));
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (NodeId s : successors(id)) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  if (static_cast<int>(order.size()) != live) {
    throw ValidationError(str_cat("graph '", name_, "' contains a cycle"));
  }
  return order;
}

void Graph::validate() const {
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    for (ValueId in : n.inputs) {
      RAMIEL_CHECK(in >= 0 && in < static_cast<ValueId>(values_.size()),
                   str_cat("node '", n.name, "' has invalid input id"));
      const Value& v = values_[static_cast<std::size_t>(in)];
      const bool is_graph_input =
          std::find(inputs_.begin(), inputs_.end(), in) != inputs_.end();
      const bool produced = v.producer != kNoNode &&
                            !nodes_[static_cast<std::size_t>(v.producer)].dead;
      if (!is_graph_input && !produced && !v.is_constant()) {
        throw ValidationError(str_cat("node '", n.name, "' reads value '",
                                      v.name,
                                      "' which is neither a graph input, a "
                                      "constant, nor produced by a live node"));
      }
    }
    for (ValueId out : n.outputs) {
      RAMIEL_CHECK(out >= 0 && out < static_cast<ValueId>(values_.size()),
                   str_cat("node '", n.name, "' has invalid output id"));
      RAMIEL_CHECK(values_[static_cast<std::size_t>(out)].producer == n.id,
                   str_cat("value '", values_[static_cast<std::size_t>(out)].name,
                           "' does not point back to its producer"));
    }
  }
  for (ValueId out : outputs_) {
    const Value& v = values_[static_cast<std::size_t>(out)];
    const bool produced = v.producer != kNoNode &&
                          !nodes_[static_cast<std::size_t>(v.producer)].dead;
    if (!produced && !v.is_constant() &&
        std::find(inputs_.begin(), inputs_.end(), out) == inputs_.end()) {
      throw ValidationError(
          str_cat("graph output '", v.name, "' has no live producer"));
    }
  }
  // Consumer-list hygiene: every value's consumers list must be exactly the
  // multiset of live-node input references. A pass that rewrites
  // Node::inputs without maintaining the list (use replace_node_input /
  // replace_value_uses) leaves stale entries that keep dead initializers
  // live in liveness analysis and memory planning.
  std::vector<int> expected(values_.size(), 0);
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    for (ValueId in : n.inputs) ++expected[static_cast<std::size_t>(in)];
  }
  for (const Value& v : values_) {
    for (NodeId c : v.consumers) {
      RAMIEL_CHECK(c >= 0 && c < static_cast<NodeId>(nodes_.size()),
                   str_cat("value '", v.name, "' has invalid consumer id"));
      const Node& n = nodes_[static_cast<std::size_t>(c)];
      if (n.dead) {
        throw ValidationError(str_cat("value '", v.name,
                                      "' lists dead node '", n.name,
                                      "' as a consumer"));
      }
      if (std::count(n.inputs.begin(), n.inputs.end(), v.id) <
          std::count(v.consumers.begin(), v.consumers.end(), c)) {
        throw ValidationError(str_cat("value '", v.name,
                                      "' has a stale consumer entry for node '",
                                      n.name, "'"));
      }
    }
    if (static_cast<int>(v.consumers.size()) !=
        expected[static_cast<std::size_t>(v.id)]) {
      throw ValidationError(
          str_cat("value '", v.name, "' has ", v.consumers.size(),
                  " consumer entries but ",
                  expected[static_cast<std::size_t>(v.id)],
                  " live-node input references"));
    }
  }
  (void)topo_order();  // throws on cycles
}

void Graph::replace_value_uses(ValueId from, ValueId to) {
  RAMIEL_CHECK(from != to, "replace_value_uses: from == to");
  Value& vf = value(from);
  Value& vt = value(to);
  for (NodeId c : vf.consumers) {
    Node& n = node(c);
    for (ValueId& in : n.inputs) {
      if (in == from) in = to;
    }
    vt.consumers.push_back(c);
  }
  vf.consumers.clear();
  for (ValueId& out : outputs_) {
    if (out == from) out = to;
  }
}

void Graph::replace_node_input(NodeId id, std::size_t index, ValueId v) {
  Node& n = node(id);
  RAMIEL_CHECK(index < n.inputs.size(),
               str_cat("replace_node_input: node '", n.name,
                       "' has no input slot ", index));
  const ValueId old = n.inputs[index];
  if (old == v) return;
  Value& ov = value(old);
  auto it = std::find(ov.consumers.begin(), ov.consumers.end(), id);
  RAMIEL_CHECK(it != ov.consumers.end(),
               str_cat("replace_node_input: value '", ov.name,
                       "' is missing consumer entry for node '", n.name, "'"));
  ov.consumers.erase(it);
  n.inputs[index] = v;
  value(v).consumers.push_back(id);
}

void Graph::append_node_input(NodeId id, ValueId v) {
  Node& n = node(id);
  RAMIEL_CHECK(v >= 0 && v < static_cast<ValueId>(values_.size()),
               str_cat("append_node_input: invalid value id ", v));
  n.inputs.push_back(v);
  value(v).consumers.push_back(id);
}

void Graph::kill_node(NodeId id) {
  Node& n = node(id);
  if (n.dead) return;
  n.dead = true;
  for (ValueId in : n.inputs) {
    auto& cons = value(in).consumers;
    cons.erase(std::remove(cons.begin(), cons.end(), id), cons.end());
  }
}

Graph Graph::compacted() const {
  Graph out(name_);
  std::vector<ValueId> value_map(values_.size(), -1);

  // A value survives if it is a graph input/output, or referenced by any
  // live node, or (constant) consumed by a live node.
  std::vector<bool> keep(values_.size(), false);
  for (ValueId in : inputs_) keep[static_cast<std::size_t>(in)] = true;
  for (ValueId o : outputs_) keep[static_cast<std::size_t>(o)] = true;
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    for (ValueId v : n.inputs) keep[static_cast<std::size_t>(v)] = true;
    for (ValueId v : n.outputs) keep[static_cast<std::size_t>(v)] = true;
  }
  for (const Value& v : values_) {
    if (!keep[static_cast<std::size_t>(v.id)]) continue;
    ValueId nv = out.add_value(v.name, v.shape);
    out.values()[static_cast<std::size_t>(nv)].const_data = v.const_data;
    out.values()[static_cast<std::size_t>(nv)].dtype = v.dtype;
    value_map[static_cast<std::size_t>(v.id)] = nv;
  }
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    // Build the node directly (bypassing add_node, which would generate
    // placeholder outputs whose names collide with the kept originals).
    Node copy;
    copy.id = static_cast<NodeId>(out.nodes_.size());
    copy.kind = n.kind;
    copy.name = n.name;
    copy.attrs = n.attrs;
    for (ValueId v : n.inputs) {
      const ValueId mapped = value_map[static_cast<std::size_t>(v)];
      RAMIEL_CHECK(mapped >= 0, "live node input value was not kept");
      copy.inputs.push_back(mapped);
      out.values_[static_cast<std::size_t>(mapped)].consumers.push_back(copy.id);
    }
    for (ValueId v : n.outputs) {
      const ValueId mapped = value_map[static_cast<std::size_t>(v)];
      RAMIEL_CHECK(mapped >= 0, "live node output value was not kept");
      copy.outputs.push_back(mapped);
      out.values_[static_cast<std::size_t>(mapped)].producer = copy.id;
    }
    out.nodes_.push_back(std::move(copy));
  }
  for (ValueId in : inputs_) {
    out.mark_input(value_map[static_cast<std::size_t>(in)]);
  }
  for (ValueId o : outputs_) {
    out.mark_output(value_map[static_cast<std::size_t>(o)]);
  }
  return out;
}

}  // namespace ramiel
