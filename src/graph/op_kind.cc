#include "graph/op_kind.h"

#include <array>
#include <utility>

#include "support/check.h"

namespace ramiel {
namespace {

struct OpInfo {
  OpKind kind;
  std::string_view name;
  std::string_view torch_name;
};

constexpr std::array<OpInfo, 36> kOps = {{
    {OpKind::kConstant, "Constant", ""},
    {OpKind::kConv2d, "Conv", "torch.nn.functional.conv2d"},
    {OpKind::kMaxPool, "MaxPool", "torch.nn.functional.max_pool2d"},
    {OpKind::kAvgPool, "AveragePool", "torch.nn.functional.avg_pool2d"},
    {OpKind::kGlobalAvgPool, "GlobalAveragePool",
     "torch.nn.functional.adaptive_avg_pool2d"},
    {OpKind::kResize, "Resize", "torch.nn.functional.interpolate"},
    {OpKind::kMatMul, "MatMul", "torch.matmul"},
    {OpKind::kGemm, "Gemm", "torch.nn.functional.linear"},
    {OpKind::kRelu, "Relu", "torch.relu"},
    {OpKind::kLeakyRelu, "LeakyRelu", "torch.nn.functional.leaky_relu"},
    {OpKind::kSigmoid, "Sigmoid", "torch.sigmoid"},
    {OpKind::kSilu, "Silu", "torch.nn.functional.silu"},
    {OpKind::kTanh, "Tanh", "torch.tanh"},
    {OpKind::kGelu, "Gelu", "torch.nn.functional.gelu"},
    {OpKind::kErf, "Erf", "torch.erf"},
    {OpKind::kSqrt, "Sqrt", "torch.sqrt"},
    {OpKind::kExp, "Exp", "torch.exp"},
    {OpKind::kNeg, "Neg", "torch.neg"},
    {OpKind::kIdentity, "Identity", ""},
    {OpKind::kAdd, "Add", "torch.add"},
    {OpKind::kSub, "Sub", "torch.sub"},
    {OpKind::kMul, "Mul", "torch.mul"},
    {OpKind::kDiv, "Div", "torch.div"},
    {OpKind::kPow, "Pow", "torch.pow"},
    {OpKind::kBatchNorm, "BatchNormalization",
     "torch.nn.functional.batch_norm"},
    {OpKind::kLayerNorm, "LayerNormalization",
     "torch.nn.functional.layer_norm"},
    {OpKind::kSoftmax, "Softmax", "torch.softmax"},
    {OpKind::kReduceMean, "ReduceMean", "torch.mean"},
    {OpKind::kConcat, "Concat", "torch.cat"},
    {OpKind::kSlice, "Slice", ""},
    {OpKind::kGather, "Gather", "torch.index_select"},
    {OpKind::kTranspose, "Transpose", "torch.permute"},
    {OpKind::kReshape, "Reshape", "torch.reshape"},
    {OpKind::kFlatten, "Flatten", "torch.flatten"},
    {OpKind::kShape, "Shape", ""},
    {OpKind::kUnsqueeze, "Unsqueeze", "torch.unsqueeze"},
}};

}  // namespace

std::string_view op_kind_name(OpKind kind) {
  for (const OpInfo& info : kOps) {
    if (info.kind == kind) return info.name;
  }
  // kSqueeze and kEmbedding do not fit in the array initializer above; handle
  // the tail explicitly to keep the table readable.
  switch (kind) {
    case OpKind::kSqueeze: return "Squeeze";
    case OpKind::kEmbedding: return "Embedding";
    default: break;
  }
  RAMIEL_UNREACHABLE("unknown OpKind");
}

std::optional<OpKind> op_kind_from_name(std::string_view name) {
  for (const OpInfo& info : kOps) {
    if (info.name == name) return info.kind;
  }
  if (name == "Squeeze") return OpKind::kSqueeze;
  if (name == "Embedding") return OpKind::kEmbedding;
  return std::nullopt;
}

std::string_view op_kind_torch_name(OpKind kind) {
  for (const OpInfo& info : kOps) {
    if (info.kind == kind) return info.torch_name;
  }
  switch (kind) {
    case OpKind::kSqueeze: return "torch.squeeze";
    case OpKind::kEmbedding: return "torch.nn.functional.embedding";
    default: break;
  }
  return "";
}

bool op_is_elementwise(OpKind kind) {
  switch (kind) {
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kSilu:
    case OpKind::kTanh:
    case OpKind::kGelu:
    case OpKind::kErf:
    case OpKind::kSqrt:
    case OpKind::kExp:
    case OpKind::kNeg:
    case OpKind::kIdentity:
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kPow:
      return true;
    default:
      return false;
  }
}

bool op_is_data_movement(OpKind kind) {
  switch (kind) {
    case OpKind::kConcat:
    case OpKind::kSlice:
    case OpKind::kGather:
    case OpKind::kTranspose:
    case OpKind::kReshape:
    case OpKind::kFlatten:
    case OpKind::kShape:
    case OpKind::kUnsqueeze:
    case OpKind::kSqueeze:
      return true;
    default:
      return false;
  }
}

int op_kind_count() { return static_cast<int>(OpKind::kEmbedding) + 1; }

}  // namespace ramiel
