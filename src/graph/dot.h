// Graphviz DOT export for visual inspection of dataflow graphs and cluster
// assignments (the paper's Figs. 1-9 are exactly such renderings).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ramiel {

/// Renders the graph in DOT format. When `cluster_of` is non-empty it must
/// map node id -> cluster index; nodes are then colored per cluster.
std::string to_dot(const Graph& graph,
                   const std::vector<int>& cluster_of = {});

}  // namespace ramiel
