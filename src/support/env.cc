#include "support/env.h"

#include <cstdlib>

namespace ramiel {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

namespace {

// A knob that is set but <= 0 is a configuration mistake, not a request for
// zero threads/capacity; treat it like unset.
int positive_env_int(const char* name, int fallback) {
  const int v = env_int(name, fallback);
  return v > 0 ? v : fallback;
}

}  // namespace

int env_intra_op_threads(int fallback) {
  return positive_env_int("RAMIEL_INTRA_OP_THREADS", fallback);
}

int env_serve_queue_depth(int fallback) {
  return positive_env_int("RAMIEL_SERVE_QUEUE_DEPTH", fallback);
}

int env_metrics_interval_ms(int fallback) {
  return positive_env_int("RAMIEL_METRICS_INTERVAL_MS", fallback);
}

bool env_mem_plan_default(bool fallback) {
  const std::string v = env_str("RAMIEL_MEM_PLAN", "");
  if (v == "arena" || v == "on" || v == "1" || v == "true") return true;
  if (v == "off" || v == "0" || v == "false") return false;
  return fallback;
}

std::string env_kernel_path(const std::string& fallback) {
  return env_str("RAMIEL_KERNEL", fallback);
}

std::int64_t env_parallel_threshold(std::int64_t fallback) {
  const char* v = std::getenv("RAMIEL_PARALLEL_THRESHOLD");
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_auto_steal_cv(double fallback) {
  const double v = env_double("RAMIEL_AUTO_STEAL_CV", fallback);
  return v >= 0.0 ? v : fallback;
}

}  // namespace ramiel
