#include "support/env.h"

#include <cstdlib>

namespace ramiel {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

}  // namespace ramiel
