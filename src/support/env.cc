#include "support/env.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <utility>

namespace ramiel {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

namespace {

// A knob that is set but <= 0 is a configuration mistake, not a request for
// zero threads/capacity; treat it like unset.
int positive_env_int(const char* name, int fallback) {
  const int v = env_int(name, fallback);
  return v > 0 ? v : fallback;
}

}  // namespace

int env_intra_op_threads(int fallback) {
  return positive_env_int("RAMIEL_INTRA_OP_THREADS", fallback);
}

int env_serve_queue_depth(int fallback) {
  return positive_env_int("RAMIEL_SERVE_QUEUE_DEPTH", fallback);
}

int env_metrics_interval_ms(int fallback) {
  return positive_env_int("RAMIEL_METRICS_INTERVAL_MS", fallback);
}

bool env_mem_plan_default(bool fallback) {
  const std::string v = env_str("RAMIEL_MEM_PLAN", "");
  if (v == "arena" || v == "on" || v == "1" || v == "true") return true;
  if (v == "off" || v == "0" || v == "false") return false;
  return fallback;
}

std::string env_kernel_path(const std::string& fallback) {
  return env_str("RAMIEL_KERNEL", fallback);
}

std::int64_t env_parallel_threshold(std::int64_t fallback) {
  const char* v = std::getenv("RAMIEL_PARALLEL_THRESHOLD");
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0) return fallback;
  return static_cast<std::int64_t>(parsed);
}

DType env_dtype(DType fallback) {
  const char* v = std::getenv("RAMIEL_DTYPE");
  if (v == nullptr) return fallback;
  const std::optional<DType> parsed = parse_dtype(v);
  return parsed ? *parsed : fallback;
}

double env_auto_steal_cv(double fallback) {
  const double v = env_double("RAMIEL_AUTO_STEAL_CV", fallback);
  return v >= 0.0 ? v : fallback;
}

bool parse_bucket_list(const std::string& text, std::vector<double>* out) {
  std::vector<double> bounds;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::size_t b = pos;
    std::size_t e = comma;
    while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
      --e;
    }
    if (b == e) return false;  // empty item ("1,,2", trailing comma, "")
    const std::string item = text.substr(b, e - b);
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str() || *end != '\0') return false;
    if (!(v > 0.0) || !std::isfinite(v)) return false;
    if (!bounds.empty() && v <= bounds.back()) return false;
    bounds.push_back(v);
    pos = comma + 1;
    if (comma == text.size()) break;
  }
  if (bounds.empty()) return false;
  *out = std::move(bounds);
  return true;
}

std::vector<double> env_hist_buckets(std::vector<double> fallback) {
  const char* v = std::getenv("RAMIEL_HIST_BUCKETS");
  if (v == nullptr) return fallback;
  std::vector<double> bounds;
  if (!parse_bucket_list(v, &bounds)) return fallback;
  return bounds;
}

}  // namespace ramiel
