// Lightweight contract checking for the ramiel library.
//
// RAMIEL_CHECK(cond, msg)   -- always-on invariant check; throws ramiel::Error.
// RAMIEL_DCHECK(cond, msg)  -- debug-only check, compiled out in NDEBUG builds.
// RAMIEL_UNREACHABLE(msg)   -- marks logically unreachable control flow.
//
// The library uses exceptions for *caller* errors (bad models, malformed
// files) and checks for *internal* invariants, following the C++ Core
// Guidelines (I.6/I.8: prefer stating contracts, E.x: use exceptions for
// error handling rather than error codes at API boundaries).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ramiel {

/// Base error type for all failures raised by the ramiel library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input model or serialized file is malformed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when a graph fails validation (dangling values, cycles, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ramiel

#define RAMIEL_CHECK(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::ramiel::detail::check_failed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define RAMIEL_DCHECK(cond, msg) \
  do {                           \
  } while (0)
#else
#define RAMIEL_DCHECK(cond, msg) RAMIEL_CHECK(cond, msg)
#endif

#define RAMIEL_UNREACHABLE(msg) \
  ::ramiel::detail::check_failed(__FILE__, __LINE__, "unreachable", (msg))
