// Environment-variable helpers for benchmark knobs (e.g. RAMIEL_SCALE to
// shrink workloads on slow CI machines).
#pragma once

#include <string>

namespace ramiel {

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparseable.
int env_int(const char* name, int fallback);

/// Reads a float environment variable; returns `fallback` when unset or
/// unparseable.
double env_double(const char* name, double fallback);

/// Reads a string environment variable; returns `fallback` when unset.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace ramiel
