// Environment-variable helpers for benchmark knobs (e.g. RAMIEL_SCALE to
// shrink workloads on slow CI machines).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/dtype.h"

namespace ramiel {

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparseable.
int env_int(const char* name, int fallback);

/// Reads a float environment variable; returns `fallback` when unset or
/// unparseable.
double env_double(const char* name, double fallback);

/// Reads a string environment variable; returns `fallback` when unset.
std::string env_str(const char* name, const std::string& fallback);

// Ops knobs: runtime configuration that must be tunable without recompiling
// callers (a serving host sets these per deployment). Non-positive or
// unparseable values fall back.

/// RAMIEL_INTRA_OP_THREADS — kernel-level threads per cluster worker.
int env_intra_op_threads(int fallback);

/// RAMIEL_SERVE_QUEUE_DEPTH — admission-control bound on the serving
/// request queue.
int env_serve_queue_depth(int fallback);

/// RAMIEL_METRICS_INTERVAL_MS — period of the serving metrics emitter's
/// snapshots (JSONL append + Prometheus textfile rewrite).
int env_metrics_interval_ms(int fallback);

/// RAMIEL_MEM_PLAN — whether executors back intermediates with planned
/// arenas ("arena"/"on"/"1") or plain heap allocation ("off"/"0"/"false").
/// Unset or unrecognized values return `fallback`.
bool env_mem_plan_default(bool fallback);

/// RAMIEL_KERNEL — kernel backend selector. Returns the raw value ("scalar"
/// or "vector" are meaningful to kernels/dispatch.cc); `fallback` when
/// unset. Kept a string so support/ stays independent of the kernels'
/// Path enum.
std::string env_kernel_path(const std::string& fallback);

/// RAMIEL_PARALLEL_THRESHOLD — minimum estimated per-op cost (numel x
/// cost-per-item) before dispatch_parallel_for fans out to the intra-op
/// pool. Zero is valid (always parallelize); negative or unparseable
/// values fall back.
std::int64_t env_parallel_threshold(std::int64_t fallback);

/// RAMIEL_DTYPE — default storage dtype for compiled models ("f32", "f16",
/// "bf16", "i8"); the `--dtype` CLI flag overrides it. Unset or unparseable
/// values fall back.
DType env_dtype(DType fallback);

/// RAMIEL_AUTO_STEAL_CV — cluster-cost coefficient-of-variation threshold
/// above which `--executor auto` picks the work-stealing runtime. Negative
/// or unparseable values fall back.
double env_auto_steal_cv(double fallback);

/// Parses a comma-separated list of strictly increasing positive doubles
/// ("0.5,1,5,25"); whitespace around items is allowed. Returns false (and
/// leaves `out` untouched) on empty input, parse errors, non-positive
/// values or non-increasing order.
bool parse_bucket_list(const std::string& text, std::vector<double>* out);

/// RAMIEL_HIST_BUCKETS — histogram upper-bound overrides for the metrics
/// registry's latency histograms, as a parse_bucket_list() string. Unset or
/// invalid values return `fallback`.
std::vector<double> env_hist_buckets(std::vector<double> fallback);

}  // namespace ramiel
