#include "support/string_util.h"

#include <cctype>

#include "support/check.h"

namespace ramiel {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) throw ParseError("dangling escape in string literal");
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      default: throw ParseError("unknown escape sequence in string literal");
    }
  }
  return out;
}

}  // namespace ramiel
