// Storage element types for tensors.
//
// The runtime computes in fp32 everywhere (accumulation, epilogues,
// elementwise math); DType describes only how a tensor's elements are
// *stored*. f16/bf16 are storage-only formats converted at the kernel
// boundary (pack/convert on read, convert on write-back); i8 is a
// per-output-channel symmetric weight quantization consumed natively by the
// quantized GEMM path. This is the onnx-mlir lowering discipline: ops stay
// generic over storage type, compute stays fp32-accumulate.
//
// The enum lives in support/ (not tensor/) so leaf libraries — env knobs,
// tools, the memory planner — can name dtypes without depending on Tensor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace ramiel {

enum class DType : std::uint8_t {
  kF32 = 0,
  kF16 = 1,
  kBF16 = 2,
  kI8 = 3,
};

/// Element width in bytes.
constexpr std::size_t dtype_size(DType d) {
  switch (d) {
    case DType::kF32:
      return 4;
    case DType::kF16:
    case DType::kBF16:
      return 2;
    case DType::kI8:
      return 1;
  }
  return 4;
}

/// Canonical lowercase name ("f32", "f16", "bf16", "i8").
const char* dtype_name(DType d);

/// Parses a canonical name; nullopt on anything else (including "").
std::optional<DType> parse_dtype(const std::string& text);

// ---------------------------------------------------------------------------
// Scalar conversions. Round-to-nearest-even on narrowing, NaN/Inf preserved
// (NaNs are quieted). Subnormal f16 values are produced and consumed
// exactly; f32 subnormals flush through the same rounding rules.
// ---------------------------------------------------------------------------

std::uint16_t f32_to_f16(float value);
float f16_to_f32(std::uint16_t bits);
std::uint16_t f32_to_bf16(float value);
float bf16_to_f32(std::uint16_t bits);

// ---------------------------------------------------------------------------
// Bulk conversions between f32 and a storage format. `dt` must be kF16 or
// kBF16 — i8 carries quantization scales and converts through
// Tensor::dequantize instead.
// ---------------------------------------------------------------------------

void convert_f32_to_storage(const float* src, void* dst, DType dt,
                            std::size_t n);
void convert_storage_to_f32(const void* src, DType dt, float* dst,
                            std::size_t n);

}  // namespace ramiel
