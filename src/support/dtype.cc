#include "support/dtype.h"

#include <cstring>

#include "support/check.h"

namespace ramiel {
namespace {

inline std::uint32_t f32_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float bits_f32(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

const char* dtype_name(DType d) {
  switch (d) {
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kBF16:
      return "bf16";
    case DType::kI8:
      return "i8";
  }
  return "f32";
}

std::optional<DType> parse_dtype(const std::string& text) {
  if (text == "f32" || text == "fp32" || text == "float32") return DType::kF32;
  if (text == "f16" || text == "fp16" || text == "float16") return DType::kF16;
  if (text == "bf16" || text == "bfloat16") return DType::kBF16;
  if (text == "i8" || text == "int8") return DType::kI8;
  return std::nullopt;
}

std::uint16_t f32_to_f16(float value) {
  const std::uint32_t x = f32_bits(value);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t exp32 = (x >> 23) & 0xffu;
  std::uint32_t mant = x & 0x7fffffu;

  if (exp32 == 0xffu) {  // Inf / NaN: keep the class, quiet any NaN payload.
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0));
  }
  const int exp = static_cast<int>(exp32) - 127 + 15;
  if (exp >= 31) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (exp <= 0) {  // subnormal half (or zero)
    if (exp < -10) return static_cast<std::uint16_t>(sign);  // underflows to 0
    mant |= 0x800000u;  // implicit leading 1
    const int shift = 14 - exp;  // in [14, 24]
    std::uint32_t sub = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (sub & 1u))) ++sub;
    return static_cast<std::uint16_t>(sign | sub);
  }
  // Normal: drop 13 mantissa bits with round-to-nearest-even. A mantissa
  // carry bumps the exponent field, which is exactly the right answer.
  std::uint32_t out =
      (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(sign | out);
}

float f16_to_f32(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1fu;
  std::uint32_t mant = bits & 0x3ffu;
  if (exp == 0) {
    if (mant == 0) return bits_f32(sign);  // signed zero
    // Subnormal: normalize by shifting the mantissa up to the implicit bit.
    int e = -1;
    do {
      mant <<= 1;
      ++e;
    } while ((mant & 0x400u) == 0);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    return bits_f32(sign | (exp32 << 23) | ((mant & 0x3ffu) << 13));
  }
  if (exp == 31) {  // Inf / NaN
    return bits_f32(sign | 0x7f800000u | (mant << 13));
  }
  return bits_f32(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

std::uint16_t f32_to_bf16(float value) {
  std::uint32_t x = f32_bits(value);
  if ((x & 0x7fffffffu) > 0x7f800000u) {  // NaN: quiet, keep high payload bit
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the dropped 16 bits; Inf survives unchanged
  // because its low mantissa bits are zero.
  x += 0x7fffu + ((x >> 16) & 1u);
  return static_cast<std::uint16_t>(x >> 16);
}

float bf16_to_f32(std::uint16_t bits) {
  return bits_f32(static_cast<std::uint32_t>(bits) << 16);
}

void convert_f32_to_storage(const float* src, void* dst, DType dt,
                            std::size_t n) {
  switch (dt) {
    case DType::kF32:
      std::memcpy(dst, src, n * sizeof(float));
      return;
    case DType::kF16: {
      auto* d = static_cast<std::uint16_t*>(dst);
      for (std::size_t i = 0; i < n; ++i) d[i] = f32_to_f16(src[i]);
      return;
    }
    case DType::kBF16: {
      auto* d = static_cast<std::uint16_t*>(dst);
      for (std::size_t i = 0; i < n; ++i) d[i] = f32_to_bf16(src[i]);
      return;
    }
    case DType::kI8:
      RAMIEL_CHECK(false,
                   "i8 storage requires quantization scales; use "
                   "Tensor::quantize_per_channel");
  }
}

void convert_storage_to_f32(const void* src, DType dt, float* dst,
                            std::size_t n) {
  switch (dt) {
    case DType::kF32:
      std::memcpy(dst, src, n * sizeof(float));
      return;
    case DType::kF16: {
      const auto* s = static_cast<const std::uint16_t*>(src);
      for (std::size_t i = 0; i < n; ++i) dst[i] = f16_to_f32(s[i]);
      return;
    }
    case DType::kBF16: {
      const auto* s = static_cast<const std::uint16_t*>(src);
      for (std::size_t i = 0; i < n; ++i) dst[i] = bf16_to_f32(s[i]);
      return;
    }
    case DType::kI8:
      RAMIEL_CHECK(false,
                   "i8 storage requires quantization scales; use "
                   "Tensor::dequantize");
  }
}

}  // namespace ramiel
