// Monotonic wall-clock stopwatch used by the profiler, the benchmark
// harnesses and the compile-time measurements (Table VIII).
#pragma once

#include <chrono>
#include <cstdint>

namespace ramiel {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts timing from now.
  void reset() { start_ = clock::now(); }

  /// Elapsed time since construction/reset, in seconds.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  double micros() const { return seconds() * 1e6; }

  /// Monotonic timestamp in nanoseconds (for trace events).
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               clock::now().time_since_epoch())
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ramiel
