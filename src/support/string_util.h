// Small string helpers shared across the library. We deliberately avoid a
// dependency on std::format (not universally available in older toolchains)
// and keep an ostream-based str_cat instead.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ramiel {

/// Concatenates all arguments using operator<< into a single string.
template <typename... Args>
std::string str_cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on arbitrary whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Escapes a string for embedding in the onnx-lite text format (quotes and
/// backslashes get a backslash prefix; newlines become \n).
std::string escape(std::string_view s);

/// Inverse of escape(). Throws ParseError on a dangling escape.
std::string unescape(std::string_view s);

}  // namespace ramiel
