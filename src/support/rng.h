// Deterministic, seedable random number generation (SplitMix64). Used for
// synthetic tensor initialization and property-test input generation so runs
// are reproducible across platforms (std::mt19937 distributions are not
// guaranteed identical across standard library implementations).
#pragma once

#include <cstdint>

namespace ramiel {

/// SplitMix64 PRNG: tiny, fast, good statistical quality for our purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) { return lo + (hi - lo) * next_float(); }

 private:
  std::uint64_t state_;
};

}  // namespace ramiel
