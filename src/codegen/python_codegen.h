// Parallel PyTorch+Python code generation (paper §IV, Algorithm 4, Fig. 11).
//
// Every cluster becomes one Python function; cross-cluster tensor
// dependences become tagged queue.put()/recv() pairs over per-pair
// multiprocessing queues (tagging makes delivery robust to out-of-order
// produce/consume positions). A main() spawns one Python process per
// cluster — processes rather than threads because of the GIL, as the paper
// notes. A single-function sequential version is also emitted, mirroring
// Ramiel's "single core non-parallel version" used as the baseline.
#pragma once

#include <string>

#include "passes/clustering.h"
#include "passes/hypercluster.h"

namespace ramiel {

struct CodegenOptions {
  /// Emitted into the module docstring.
  std::string model_name = "model";
  /// Path comment for the weights file the code expects.
  std::string weights_path = "model.rmb";
};

struct CodegenResult {
  std::string parallel_source;    // one function per cluster + main()
  std::string sequential_source;  // single-function reference version
  /// Filled by the pipeline when batch > 1: the hyperclustered variant.
  std::string hypercluster_source;
  int num_queues = 0;             // directed cluster pairs that communicate
  int num_messages = 0;           // put()/recv() pairs generated
};

/// Runs Algorithm 4 over the clustering. Requires cluster node lists in
/// topological order (as produced by merge_clusters / finalize passes).
CodegenResult generate_python(const Graph& graph, const Clustering& clustering,
                              const CodegenOptions& options = {});

/// Batch > 1 variant: one Python function per *hypercluster* worker whose
/// body interleaves the per-sample op streams exactly as the worker task
/// list does (§III-E). SSA names and message tags carry the sample index;
/// inputs/outputs are lists indexed by sample.
std::string generate_python_hyper(const Graph& graph,
                                  const Hyperclustering& hc,
                                  const CodegenOptions& options = {});

/// Renders the PyTorch expression for one node given Python expressions for
/// its inputs (exposed for tests).
std::string torch_expression(const Node& node,
                             const std::vector<std::string>& inputs);

}  // namespace ramiel
