#include "codegen/python_codegen.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

/// Sanitizes a value/node name into a Python identifier with an SSA-style
/// "v_" prefix.
std::string ssa_name(const std::string& name) {
  std::string out = "v_";
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

std::string py_int_list(const std::vector<std::int64_t>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(v[i]);
  }
  out += "]";
  return out;
}

/// The shared module prelude: imports plus the tagged-queue receive helper.
const char* kPrelude =
    R"(import torch
import torch.multiprocessing as mp


def recv(queue, buffer, tag):
    """Tagged receive: queues deliver (tag, tensor) pairs; out-of-order
    arrivals are parked in `buffer` until their consumer asks for them."""
    while tag not in buffer:
        key, value = queue.get()
        buffer[key] = value
    return buffer.pop(tag)

)";

}  // namespace

namespace {

/// Re-expands the fused-epilogue "act" attr (set by fuse_activations) in the
/// generated PyTorch, which has no fused conv/gemm epilogue to target.
std::string wrap_fused_activation(const Node& n, std::string expr) {
  if (!n.attrs.has("act")) return expr;
  const std::string& act = n.attrs.get_str("act");
  if (act == "relu") return str_cat("torch.relu(", expr, ")");
  if (act == "sigmoid") return str_cat("torch.sigmoid(", expr, ")");
  return expr;
}

}  // namespace

std::string torch_expression(const Node& n,
                             const std::vector<std::string>& in) {
  switch (n.kind) {
    case OpKind::kConv2d: {
      std::string expr = str_cat("torch.nn.functional.conv2d(", in[0], ", ",
                                 in[1], ", ", in.size() > 2 ? in[2] : "None");
      expr += str_cat(", stride=", n.attrs.get_int("stride", 1),
                      ", padding=", n.attrs.get_int("pad", 0),
                      ", dilation=", n.attrs.get_int("dilation", 1),
                      ", groups=", n.attrs.get_int("groups", 1), ")");
      return wrap_fused_activation(n, std::move(expr));
    }
    case OpKind::kMaxPool:
    case OpKind::kAvgPool: {
      const char* fn = n.kind == OpKind::kMaxPool
                           ? "torch.nn.functional.max_pool2d"
                           : "torch.nn.functional.avg_pool2d";
      const std::int64_t k = n.attrs.get_int("kernel");
      return str_cat(fn, "(", in[0], ", ", k, ", stride=",
                     n.attrs.get_int("stride", k), ", padding=",
                     n.attrs.get_int("pad", 0), ")");
    }
    case OpKind::kGlobalAvgPool:
      return str_cat("torch.nn.functional.adaptive_avg_pool2d(", in[0],
                     ", (1, 1))");
    case OpKind::kResize:
      return str_cat("torch.nn.functional.interpolate(", in[0],
                     ", scale_factor=", n.attrs.get_int("scale"),
                     ", mode='nearest')");
    case OpKind::kMatMul:
      return str_cat("torch.matmul(", in[0], ", ", in[1], ")");
    case OpKind::kGemm: {
      std::string a = in[0];
      std::string b = in[1];
      if (n.attrs.get_int("trans_a", 0) != 0) a = str_cat(a, ".t()");
      if (n.attrs.get_int("trans_b", 0) != 0) b = str_cat(b, ".t()");
      std::string expr = str_cat("torch.matmul(", a, ", ", b, ")");
      if (in.size() > 2) expr = str_cat(expr, " + ", in[2]);
      return wrap_fused_activation(n, std::move(expr));
    }
    case OpKind::kRelu:
      return str_cat("torch.relu(", in[0], ")");
    case OpKind::kLeakyRelu:
      return str_cat("torch.nn.functional.leaky_relu(", in[0],
                     ", negative_slope=", n.attrs.get_float("alpha", 0.01), ")");
    case OpKind::kSigmoid:
      return str_cat("torch.sigmoid(", in[0], ")");
    case OpKind::kSilu:
      return str_cat("torch.nn.functional.silu(", in[0], ")");
    case OpKind::kTanh:
      return str_cat("torch.tanh(", in[0], ")");
    case OpKind::kGelu:
      return str_cat("torch.nn.functional.gelu(", in[0], ")");
    case OpKind::kErf:
      return str_cat("torch.erf(", in[0], ")");
    case OpKind::kSqrt:
      return str_cat("torch.sqrt(", in[0], ")");
    case OpKind::kExp:
      return str_cat("torch.exp(", in[0], ")");
    case OpKind::kNeg:
      return str_cat("torch.neg(", in[0], ")");
    case OpKind::kIdentity:
      return in[0];
    case OpKind::kAdd:
      return str_cat(in[0], " + ", in[1]);
    case OpKind::kSub:
      return str_cat(in[0], " - ", in[1]);
    case OpKind::kMul:
      return str_cat(in[0], " * ", in[1]);
    case OpKind::kDiv:
      return str_cat(in[0], " / ", in[1]);
    case OpKind::kPow:
      return str_cat("torch.pow(", in[0], ", ", in[1], ")");
    case OpKind::kBatchNorm:
      return str_cat("torch.nn.functional.batch_norm(", in[0], ", ", in[3],
                     ", ", in[4], ", weight=", in[1], ", bias=", in[2],
                     ", eps=", n.attrs.get_float("epsilon", 1e-5), ")");
    case OpKind::kLayerNorm:
      return str_cat("torch.nn.functional.layer_norm(", in[0], ", ", in[0],
                     ".shape[-1:], weight=", in[1], ", bias=", in[2], ", eps=",
                     n.attrs.get_float("epsilon", 1e-5), ")");
    case OpKind::kSoftmax:
      return str_cat("torch.softmax(", in[0], ", dim=",
                     n.attrs.get_int("axis", -1), ")");
    case OpKind::kReduceMean:
      return str_cat("torch.mean(", in[0], ", dim=",
                     py_int_list(n.attrs.get_ints("axes")), ", keepdim=True)");
    case OpKind::kConcat: {
      std::string expr = "torch.cat([";
      for (std::size_t i = 0; i < in.size(); ++i) {
        if (i) expr += ", ";
        expr += in[i];
      }
      return str_cat(expr, "], dim=", n.attrs.get_int("axis"), ")");
    }
    case OpKind::kSlice: {
      // Build a python slicing expression on one axis. Negative axes cannot
      // be rendered positionally without the rank; emit torch.narrow-style
      // indexing via slice() on the normalized axis instead.
      const int axis = static_cast<int>(n.attrs.get_int("axis"));
      if (axis < 0) {
        const std::int64_t step = n.attrs.get_int("step", 1);
        std::string expr = str_cat(in[0], ".index_select(", axis,
                                   ", torch.arange(", n.attrs.get_int("begin"),
                                   ", ", n.attrs.get_int("end"));
        if (step != 1) expr = str_cat(expr, ", ", step);
        return str_cat(expr, "))");
      }
      std::string idx;
      for (int d = 0; d < axis; ++d) idx += ":, ";
      idx += str_cat(n.attrs.get_int("begin"), ":", n.attrs.get_int("end"));
      const std::int64_t step = n.attrs.get_int("step", 1);
      if (step != 1) idx += str_cat(":", step);
      return str_cat(in[0], "[", idx, "]");
    }
    case OpKind::kGather:
      return str_cat("torch.index_select(", in[0], ", ",
                     n.attrs.get_int("axis", 0), ", ", in[1],
                     ".long().flatten())");
    case OpKind::kTranspose:
      return str_cat(in[0], ".permute(", py_int_list(n.attrs.get_ints("perm")),
                     ")");
    case OpKind::kReshape:
      if (n.attrs.has("shape")) {
        return str_cat("torch.reshape(", in[0], ", ",
                       py_int_list(n.attrs.get_ints("shape")), ")");
      }
      return str_cat("torch.reshape(", in[0], ", [int(d) for d in ", in[1],
                     "])");
    case OpKind::kFlatten:
      return str_cat("torch.flatten(", in[0], ", start_dim=",
                     n.attrs.get_int("axis", 1), ")");
    case OpKind::kShape:
      return str_cat("torch.tensor(", in[0], ".shape, dtype=torch.float32)");
    case OpKind::kUnsqueeze: {
      std::string expr = in[0];
      for (std::int64_t a : n.attrs.get_ints("axes")) {
        expr = str_cat(expr, ".unsqueeze(", a, ")");
      }
      return expr;
    }
    case OpKind::kSqueeze: {
      std::string expr = in[0];
      auto axes = n.attrs.get_ints("axes");
      // Squeeze back-to-front so earlier axis indices stay valid.
      std::sort(axes.rbegin(), axes.rend());
      for (std::int64_t a : axes) expr = str_cat(expr, ".squeeze(", a, ")");
      return expr;
    }
    case OpKind::kEmbedding:
      return str_cat("torch.nn.functional.embedding(", in[1], ".long(), ",
                     in[0], ")");
    case OpKind::kConstant:
      RAMIEL_UNREACHABLE("Constant nodes are materialized as weights");
  }
  RAMIEL_UNREACHABLE("unhandled op in torch_expression");
}

CodegenResult generate_python(const Graph& graph, const Clustering& clustering,
                              const CodegenOptions& options) {
  CodegenResult result;
  const int k = clustering.size();

  // Which directed queues exist: (producer cluster, consumer cluster).
  std::set<std::pair<int, int>> queues;
  for (const Node& n : graph.nodes()) {
    if (n.dead || n.kind == OpKind::kConstant) continue;
    const int cn = clustering.cluster_of[static_cast<std::size_t>(n.id)];
    for (ValueId ov : n.outputs) {
      for (NodeId c : graph.value(ov).consumers) {
        if (graph.node(c).dead) continue;
        const int cc = clustering.cluster_of[static_cast<std::size_t>(c)];
        if (cc != cn) queues.emplace(cn, cc);
      }
    }
  }
  result.num_queues = static_cast<int>(queues.size());
  auto queue_name = [](int from, int to) {
    return str_cat("q_", from, "_", to);
  };

  // Expression for reading a value inside cluster `me`. Remote reads emit a
  // recv() statement first (once per value) via `body`.
  auto emit_read = [&](int me, ValueId v, std::ostringstream& body,
                       std::set<ValueId>& received) -> std::string {
    const Value& val = graph.value(v);
    if (val.is_constant()) return str_cat("weights['", val.name, "']");
    if (val.producer == kNoNode || graph.node(val.producer).dead) {
      return str_cat("inputs['", val.name, "']");
    }
    const int pc = clustering.cluster_of[static_cast<std::size_t>(val.producer)];
    if (pc == me) return ssa_name(val.name);
    if (received.insert(v).second) {
      body << "    " << ssa_name(val.name) << " = recv("
           << queue_name(pc, me) << ", buffer, '" << val.name
           << "')  # from cluster " << pc << "\n";
      ++result.num_messages;
    }
    return ssa_name(val.name);
  };

  std::ostringstream par;
  par << "\"\"\"Parallel PyTorch code generated by Ramiel for model '"
      << options.model_name << "'.\n\n"
      << "One function per cluster; cross-cluster tensors travel through\n"
         "tagged multiprocessing queues. Weights are loaded from '"
      << options.weights_path << "'.\n\"\"\"\n"
      << kPrelude;

  for (int c = 0; c < k; ++c) {
    // Function signature: the queues this cluster touches.
    std::vector<std::string> params;
    for (const auto& [from, to] : queues) {
      if (from == c || to == c) params.push_back(queue_name(from, to));
    }
    par << "\ndef cluster_" << c << "(" << join(params, ", ")
        << (params.empty() ? "" : ", ") << "inputs, weights, outputs):\n";
    par << "    buffer = {}\n";
    std::ostringstream body;
    std::set<ValueId> received;
    int statements = 0;
    for (NodeId id : clustering.clusters[static_cast<std::size_t>(c)].nodes) {
      const Node& n = graph.node(id);
      if (n.kind == OpKind::kConstant) continue;  // materialized as weights
      RAMIEL_CHECK(n.outputs.size() == 1,
                   "code generation supports single-output nodes only");
      std::vector<std::string> ins;
      ins.reserve(n.inputs.size());
      for (ValueId v : n.inputs) ins.push_back(emit_read(c, v, body, received));
      const Value& out = graph.value(n.outputs[0]);
      body << "    " << ssa_name(out.name) << " = "
           << torch_expression(n, ins) << "  # " << op_kind_name(n.kind)
           << " '" << n.name << "'\n";
      ++statements;
      // Sends: one tagged put per remote consumer cluster per output.
      for (ValueId ov : n.outputs) {
        std::set<int> dests;
        for (NodeId cons : graph.value(ov).consumers) {
          if (graph.node(cons).dead) continue;
          const int cc = clustering.cluster_of[static_cast<std::size_t>(cons)];
          if (cc != c) dests.insert(cc);
        }
        for (int dest : dests) {
          body << "    " << queue_name(c, dest) << ".put(('"
               << graph.value(ov).name << "', " << ssa_name(graph.value(ov).name)
               << "))  # -> cluster " << dest << "\n";
        }
        if (std::find(graph.outputs().begin(), graph.outputs().end(), ov) !=
            graph.outputs().end()) {
          body << "    outputs['" << graph.value(ov).name << "'] = "
               << ssa_name(graph.value(ov).name) << "\n";
        }
      }
    }
    if (statements == 0) body << "    pass\n";
    par << body.str();
  }

  // main(): build queues, spawn one process per cluster.
  par << "\n\ndef main(inputs, weights):\n"
      << "    manager = mp.Manager()\n"
      << "    outputs = manager.dict()\n";
  for (const auto& [from, to] : queues) {
    par << "    " << queue_name(from, to) << " = mp.Queue()\n";
  }
  par << "    procs = []\n";
  for (int c = 0; c < k; ++c) {
    std::vector<std::string> args;
    for (const auto& [from, to] : queues) {
      if (from == c || to == c) args.push_back(queue_name(from, to));
    }
    par << "    procs.append(mp.Process(target=cluster_" << c << ", args=("
        << join(args, ", ") << (args.empty() ? "" : ", ")
        << "inputs, weights, outputs)))\n";
  }
  par << "    for p in procs:\n        p.start()\n"
      << "    for p in procs:\n        p.join()\n"
      << "    return dict(outputs)\n";
  result.parallel_source = par.str();

  // Sequential reference: one function, topological order.
  std::ostringstream seq;
  seq << "\"\"\"Sequential reference generated by Ramiel for model '"
      << options.model_name << "'.\"\"\"\n"
      << "import torch\n\n\n"
      << "def run_sequential(inputs, weights):\n"
      << "    outputs = {}\n";
  for (NodeId id : graph.topo_order()) {
    const Node& n = graph.node(id);
    if (n.kind == OpKind::kConstant) continue;
    std::vector<std::string> ins;
    for (ValueId v : n.inputs) {
      const Value& val = graph.value(v);
      if (val.is_constant()) {
        ins.push_back(str_cat("weights['", val.name, "']"));
      } else if (val.producer == kNoNode || graph.node(val.producer).dead) {
        ins.push_back(str_cat("inputs['", val.name, "']"));
      } else {
        ins.push_back(ssa_name(val.name));
      }
    }
    const Value& out = graph.value(n.outputs[0]);
    seq << "    " << ssa_name(out.name) << " = " << torch_expression(n, ins)
        << "  # " << op_kind_name(n.kind) << "\n";
    for (ValueId ov : n.outputs) {
      if (std::find(graph.outputs().begin(), graph.outputs().end(), ov) !=
          graph.outputs().end()) {
        seq << "    outputs['" << graph.value(ov).name << "'] = "
            << ssa_name(graph.value(ov).name) << "\n";
      }
    }
  }
  seq << "    return outputs\n";
  result.sequential_source = seq.str();
  return result;
}

std::string generate_python_hyper(const Graph& graph,
                                  const Hyperclustering& hc,
                                  const CodegenOptions& options) {
  const int k = static_cast<int>(hc.workers.size());
  auto queue_name = [](int from, int to) {
    return str_cat("q_", from, "_", to);
  };
  auto sample_ssa = [](const Value& v, int s) {
    return str_cat(ssa_name(v.name), "_s", s);
  };

  // Directed worker pairs that exchange at least one message.
  std::set<std::pair<int, int>> queues;
  for (const Node& n : graph.nodes()) {
    if (n.dead || n.kind == OpKind::kConstant) continue;
    for (int s = 0; s < hc.batch; ++s) {
      const int wn = hc.worker(n.id, s);
      for (ValueId ov : n.outputs) {
        for (NodeId c : graph.value(ov).consumers) {
          if (graph.node(c).dead) continue;
          const int wc = hc.worker(c, s);
          if (wc != wn) queues.emplace(wn, wc);
        }
      }
    }
  }

  std::ostringstream os;
  os << "\"\"\"Hyperclustered parallel PyTorch code generated by Ramiel for "
        "model '"
     << options.model_name << "' (batch " << hc.batch << ").\n\n"
     << "Each worker interleaves the ops of " << hc.batch
     << " in-flight samples; message tags carry (value, sample).\n\"\"\"\n"
     << kPrelude;

  for (int w = 0; w < k; ++w) {
    std::vector<std::string> params;
    for (const auto& [from, to] : queues) {
      if (from == w || to == w) params.push_back(queue_name(from, to));
    }
    os << "\ndef worker_" << w << "(" << join(params, ", ")
       << (params.empty() ? "" : ", ") << "inputs, weights, outputs):\n"
       << "    # inputs/outputs are lists indexed by sample.\n"
       << "    buffer = {}\n";
    std::set<std::pair<ValueId, int>> received;
    int statements = 0;
    for (const HyperTask& task : hc.workers[static_cast<std::size_t>(w)]) {
      const Node& n = graph.node(task.node);
      if (n.kind == OpKind::kConstant) continue;
      const int s = task.sample;
      std::vector<std::string> ins;
      for (ValueId v : n.inputs) {
        const Value& val = graph.value(v);
        if (val.is_constant()) {
          ins.push_back(str_cat("weights['", val.name, "']"));
          continue;
        }
        if (val.producer == kNoNode || graph.node(val.producer).dead) {
          ins.push_back(str_cat("inputs[", s, "]['", val.name, "']"));
          continue;
        }
        const int pw = hc.worker(val.producer, s);
        if (pw != w && received.insert({v, s}).second) {
          os << "    " << sample_ssa(val, s) << " = recv("
             << queue_name(pw, w) << ", buffer, ('" << val.name << "', " << s
             << "))  # from worker " << pw << "\n";
        }
        ins.push_back(sample_ssa(val, s));
      }
      const Value& out = graph.value(n.outputs[0]);
      os << "    " << sample_ssa(out, s) << " = " << torch_expression(n, ins)
         << "  # " << op_kind_name(n.kind) << " sample " << s << "\n";
      ++statements;
      for (ValueId ov : n.outputs) {
        std::set<int> dests;
        for (NodeId c : graph.value(ov).consumers) {
          if (graph.node(c).dead) continue;
          const int wc = hc.worker(c, s);
          if (wc != w) dests.insert(wc);
        }
        for (int dest : dests) {
          os << "    " << queue_name(w, dest) << ".put((('"
             << graph.value(ov).name << "', " << s << "), "
             << sample_ssa(graph.value(ov), s) << "))  # -> worker " << dest
             << "\n";
        }
        if (std::find(graph.outputs().begin(), graph.outputs().end(), ov) !=
            graph.outputs().end()) {
          os << "    outputs[" << s << "]['" << graph.value(ov).name
             << "'] = " << sample_ssa(graph.value(ov), s) << "\n";
        }
      }
    }
    if (statements == 0) os << "    pass\n";
  }

  os << "\n\ndef main(inputs, weights):\n"
     << "    manager = mp.Manager()\n"
     << "    outputs = [manager.dict() for _ in range(" << hc.batch << ")]\n";
  for (const auto& [from, to] : queues) {
    os << "    " << queue_name(from, to) << " = mp.Queue()\n";
  }
  os << "    procs = []\n";
  for (int w = 0; w < k; ++w) {
    std::vector<std::string> args;
    for (const auto& [from, to] : queues) {
      if (from == w || to == w) args.push_back(queue_name(from, to));
    }
    os << "    procs.append(mp.Process(target=worker_" << w << ", args=("
       << join(args, ", ") << (args.empty() ? "" : ", ")
       << "inputs, weights, outputs)))\n";
  }
  os << "    for p in procs:\n        p.start()\n"
     << "    for p in procs:\n        p.join()\n"
     << "    return [dict(o) for o in outputs]\n";
  return os.str();
}

}  // namespace ramiel
