// Unified trace timeline in Chrome trace-event JSON (loadable in Perfetto
// or chrome://tracing).
//
// Every subsystem that measures time stamps events with the same clock
// (Stopwatch::now_ns, steady_clock), so compile passes, per-task kernel
// execution, cross-worker message flows and server batch dispatches all
// land on one coherent timeline — the slack-analysis view the paper's
// Fig. 13/14 reasoning implies. Conventions used by the built-in emitters:
//
//   pid kCompilerPid (1) — compiler passes (one track)
//   pid kRuntimePid  (0) — executor workers (tid = worker index)
//   pid kServerPid   (2) — serving layer (batcher)
//
// A Timeline is an accumulation buffer, not a hot-path structure: emitters
// append events while converting already-collected profiles/reports, then
// serialize once. Not thread-safe; build and serialize from one thread.
//
// The span buffer is bounded: past `capacity` events the Timeline becomes a
// ring and overwrites its *oldest* events (a long ramiel_serve run with
// --trace-out keeps the most recent window instead of growing without
// limit). Overwrites are counted in dropped() and in the process-wide
// ramiel_trace_dropped_spans_total counter. Track-name metadata is kept
// aside and never dropped, so a truncated trace still labels its tracks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ramiel::obs {

inline constexpr int kRuntimePid = 0;
inline constexpr int kCompilerPid = 1;
inline constexpr int kServerPid = 2;

class Timeline {
 public:
  /// Default event capacity (~a few hundred MB of JSON at worst).
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit Timeline(std::size_t capacity = kDefaultCapacity);

  /// One argument shown in the Perfetto detail pane for an event.
  struct Arg {
    Arg(std::string key, std::string value)
        : key(std::move(key)), str(std::move(value)), is_number(false) {}
    Arg(std::string key, double value)
        : key(std::move(key)), num(value), is_number(true) {}
    Arg(std::string key, std::int64_t value)
        : Arg(std::move(key), static_cast<double>(value)) {}
    Arg(std::string key, int value)
        : Arg(std::move(key), static_cast<double>(value)) {}

    std::string key;
    std::string str;
    double num = 0.0;
    bool is_number = false;
  };

  /// Complete event ("X"): one span [start_ns, end_ns) on a track.
  void span(std::string name, std::string cat, int pid, int tid,
            std::int64_t start_ns, std::int64_t end_ns,
            std::vector<Arg> args = {});

  /// Instant event ("i", thread scope).
  void instant(std::string name, std::string cat, int pid, int tid,
               std::int64_t ts_ns, std::vector<Arg> args = {});

  /// Counter event ("C"): Perfetto renders a value-over-time track.
  void counter(std::string name, int pid, std::int64_t ts_ns, double value);

  /// Flow arrow from (src_pid, src_tid, send_ns) to (dst_pid, dst_tid,
  /// recv_ns) — the s/f event pair Perfetto draws as an arrow between
  /// spans. `id` must be unique per arrow within the trace.
  void flow(std::string name, std::string cat, std::uint64_t id, int src_pid,
            int src_tid, std::int64_t send_ns, int dst_pid, int dst_tid,
            std::int64_t recv_ns);

  /// Names a process / thread track in the viewer.
  void process_name(int pid, std::string name);
  void thread_name(int pid, int tid, std::string name);

  bool empty() const { return events_.empty() && meta_.empty(); }
  std::size_t size() const { return events_.size() + meta_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Serializes as {"traceEvents":[...]} (the Chrome JSON object form).
  std::string to_chrome_json() const;

 private:
  struct Event {
    std::string name;
    std::string cat;
    char ph = 'X';
    int pid = 0;
    int tid = 0;
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = -1;      // "X" only
    double counter_value = 0.0;    // "C" only
    std::uint64_t flow_id = 0;     // "s"/"f" only
    bool has_flow_id = false;
    std::vector<Arg> args;
  };

  void push(Event e);

  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest event once the ring wrapped
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::vector<Event> meta_;  // 'M' track names, never dropped
};

}  // namespace ramiel::obs
