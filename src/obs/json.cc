#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace ramiel::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // %.17g round-trips every double but litters output with noise digits;
  // %.12g is exact for the counters/timestamps we emit and stays readable.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace ramiel::obs
