// Critical-path profiler and latency-attribution engine (the diagnosis
// layer over rt/'s Profile). The compiler optimizes a *predicted* critical
// path; this answers what the *realized* one was: given the per-task
// (node, sample) begin/end events either executor records, walk backward
// from the last-finishing task through whichever constraint bound each
// task's start — its latest data predecessor or the previous task on its
// worker — and decompose end-to-end wall time into
//
//   compute  time the path was inside a kernel,
//   comm     the path waited on data produced on *another* worker,
//   queue    the path waited behind same-worker occupancy or scheduling,
//   idle     nothing bound the path (startup / dispatch gaps).
//
// The four components sum to the profiled window exactly by construction
// (the walk tiles [start_ns, end_ns] with adjacent segments), which is what
// makes per-op shares trustworthy: "this Conv is 4% of total kernel time
// but 31% of the critical path".
//
// The same recorded DAG feeds a Coz-style what-if estimator (whatif.h):
// replay it with node X sped up k-fold or the worker count changed and
// report the predicted end-to-end delta.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "passes/hypercluster.h"
#include "rt/profiler.h"

namespace ramiel::obs {
class Registry;
}  // namespace ramiel::obs

namespace ramiel::prof {

/// What one slice of the realized critical path was doing.
enum class Segment { kCompute, kComm, kQueue, kIdle };

const char* segment_name(Segment kind);

/// One chronological slice of the critical path. Wait slices carry the task
/// that was waiting (the consumer whose input was late), compute slices the
/// task that ran.
struct PathStep {
  Segment kind = Segment::kIdle;
  NodeId node = kNoNode;  // kNoNode for idle gaps before the first task
  int sample = 0;
  int worker = -1;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;

  double ms() const { return static_cast<double>(end_ns - begin_ns) / 1e6; }
};

/// Self-time vs critical-path-time ranking entry for one graph node.
struct OpAttribution {
  NodeId node = kNoNode;
  std::string name;
  std::string op;
  int cluster = -1;        // static placement cluster (-1 when unknown)
  int tasks = 0;           // executed (node, sample) instances
  int path_tasks = 0;      // instances on the realized critical path
  double self_ms = 0.0;      // kernel time across all instances/workers
  double critpath_ms = 0.0;  // compute + attributed waits on the path
  double self_share = 0.0;      // self_ms / total kernel time
  double critpath_share = 0.0;  // critpath_ms / wall
};

/// On-path attribution rolled up per static cluster.
struct ClusterAttribution {
  int cluster = -1;
  double compute_ms = 0.0;
  double comm_ms = 0.0;
  double queue_ms = 0.0;
  double critpath_share = 0.0;  // (compute+comm+queue) / wall
};

/// Whole-run occupancy per worker plus how long the path ran through it.
struct WorkerAttribution {
  int worker = -1;
  int tasks = 0;
  double busy_ms = 0.0;
  double idle_ms = 0.0;  // window - busy
  double path_ms = 0.0;  // critical-path residence on this worker
};

/// One what-if scenario: predicted end-to-end wall if the recorded DAG were
/// replayed with the stated change (Coz-style virtual speedup).
struct WhatIf {
  std::string scenario;
  double baseline_ms = 0.0;   // replay of the unmodified recorded DAG
  double predicted_ms = 0.0;  // replay with the change applied
  double speedup = 0.0;       // baseline_ms / predicted_ms
};

struct CriticalPathReport {
  bool valid = false;  // false when the profile carried no task events
  double wall_ms = 0.0;     // profiled window (start_ns..end_ns)
  double compute_ms = 0.0;  // compute+comm+queue+idle == wall (exactly)
  double comm_ms = 0.0;
  double queue_ms = 0.0;
  double idle_ms = 0.0;
  int tasks = 0;       // executed task instances in the profile
  int path_tasks = 0;  // of those, on the realized critical path
  int workers = 0;
  double replay_ms = 0.0;  // what-if baseline replay of the recorded DAG

  std::vector<PathStep> path;  // chronological; empty if !keep_path
  std::vector<OpAttribution> ops;  // critpath_ms descending, top_ops kept
  std::vector<ClusterAttribution> clusters;
  std::vector<WorkerAttribution> worker_stats;
  std::vector<WhatIf> what_ifs;

  /// (node, sample) pairs on the path, for Profile::to_timeline
  /// highlighting.
  std::vector<std::pair<NodeId, int>> critical_tasks() const;

  /// Strict-JSON rendering (the `critical_path` block of run/serve
  /// reports).
  std::string to_json() const;

  /// Short human-readable block for the CLIs.
  std::string summary() const;
};

struct AnalyzeOptions {
  int top_ops = 10;       // ranking length retained in the report
  bool keep_path = true;  // retain per-step path (drop for tiny exemplars)
  bool what_if = true;    // run the built-in scenario battery
  int what_if_ops = 3;    // "2x node" scenarios for the top-N path ops
  /// Cross-worker data-arrival cost used by the what-if replay. Negative:
  /// estimate from the profile's recorded messages (or 0 when none).
  double comm_ns_per_byte = -1.0;
  double comm_fixed_ns = -1.0;
};

/// Analyzes one recorded run. Works on profiles from the sequential, static
/// and steal executors alike (anything that fills Profile::events); `hc` is
/// only consulted for cluster attribution and may be empty.
CriticalPathReport analyze(const Graph& graph, const Hyperclustering& hc,
                           const Profile& profile,
                           const AnalyzeOptions& options = {});

/// Publishes the decomposition as Prometheus series:
/// ramiel_critpath_{compute,comm,queue,idle}_ms gauges plus per-cluster
/// ramiel_critpath_cluster_share{cluster="k"} gauges. Defaults to the
/// process-wide registry.
void publish(const CriticalPathReport& report,
             obs::Registry* registry = nullptr);

}  // namespace ramiel::prof
