#include "obs/prof/whatif.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

namespace ramiel::prof {
namespace {

double value_bytes(const Graph& graph, ValueId v) {
  const Shape& shape = graph.value(v).shape;
  if (shape.rank() == 0) return 4.0;  // scalar
  return 4.0 * static_cast<double>(shape.numel());
}

}  // namespace

ReplayComm estimate_comm(const Profile& profile) {
  std::vector<double> latencies;
  std::vector<double> per_byte;
  for (const MessageEvent& m : profile.messages) {
    if (m.recv_ns <= m.send_ns) continue;  // never consumed / zero latency
    const double lat = static_cast<double>(m.recv_ns - m.send_ns);
    latencies.push_back(lat);
    if (m.bytes > 0) per_byte.push_back(lat / static_cast<double>(m.bytes));
  }
  if (latencies.empty()) return {};
  // The fixed floor is the cheapest delivery seen; the slope is the median
  // per-byte latency above that floor (medians resist the tail where a
  // receiver was busy and "latency" includes its queueing).
  ReplayComm comm;
  comm.fixed_ns = *std::min_element(latencies.begin(), latencies.end());
  if (!per_byte.empty()) {
    std::nth_element(per_byte.begin(),
                     per_byte.begin() + static_cast<std::ptrdiff_t>(
                                            per_byte.size() / 2),
                     per_byte.end());
    comm.ns_per_byte = per_byte[per_byte.size() / 2];
  }
  return comm;
}

ReplayDag build_replay_dag(const Graph& graph, const Profile& profile,
                           const ReplayComm& comm) {
  ReplayDag dag;
  dag.workers = std::max<int>(1, static_cast<int>(profile.workers.size()));
  if (profile.events.empty()) return dag;

  // Recorded start order is a valid topological order of the executed DAG:
  // every consumer started only after its producer finished.
  std::vector<std::size_t> order(profile.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const TaskEvent& ea = profile.events[a];
    const TaskEvent& eb = profile.events[b];
    if (ea.start_ns != eb.start_ns) return ea.start_ns < eb.start_ns;
    return std::make_pair(ea.node, ea.sample) <
           std::make_pair(eb.node, eb.sample);
  });

  std::map<std::pair<NodeId, int>, std::int32_t> index;
  dag.tasks.reserve(order.size());
  for (std::size_t i : order) {
    const TaskEvent& e = profile.events[i];
    ReplayDag::Task t;
    t.node = e.node;
    t.sample = e.sample;
    t.dur_ns = static_cast<double>(e.end_ns - e.start_ns);
    index[{e.node, e.sample}] = static_cast<std::int32_t>(dag.tasks.size());
    dag.tasks.push_back(std::move(t));
  }
  dag.succs.resize(dag.tasks.size());
  for (std::size_t ti = 0; ti < dag.tasks.size(); ++ti) {
    ReplayDag::Task& t = dag.tasks[ti];
    for (ValueId v : graph.node(t.node).inputs) {
      const Value& val = graph.value(v);
      // Constant values are available from time zero — no dependency, no
      // comm charge (mirrors the executors and the simulator).
      if (val.is_constant()) continue;
      const NodeId p = val.producer;
      if (p == kNoNode) continue;
      auto it = index.find({p, t.sample});
      if (it == index.end()) continue;  // constant-folded / never executed
      const std::int32_t pi = it->second;
      if (std::find(t.preds.begin(), t.preds.end(), pi) != t.preds.end()) {
        continue;
      }
      t.preds.push_back(pi);
      t.pred_comm_ns.push_back(comm.fixed_ns +
                               comm.ns_per_byte * value_bytes(graph, v));
      dag.succs[static_cast<std::size_t>(pi)].push_back(
          static_cast<std::int32_t>(ti));
    }
  }
  return dag;
}

double replay_ms(const ReplayDag& dag, int workers,
                 const std::vector<double>* scale) {
  if (dag.tasks.empty()) return 0.0;
  workers = std::max(1, workers);
  const std::size_t n = dag.tasks.size();

  std::vector<int> missing(n);
  std::vector<double> finish(n, 0.0);
  std::vector<int> placed(n, -1);
  std::vector<std::int32_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    missing[i] = static_cast<int>(dag.tasks[i].preds.size());
    if (missing[i] == 0) ready.push_back(static_cast<std::int32_t>(i));
  }
  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);

  // Greedy list schedule: take the earliest-free worker, run whichever
  // ready task can start soonest there (charging comm for cross-worker
  // predecessor data), ties broken by recorded order. A task becomes ready
  // once all predecessors are *scheduled* — the start-time max handles
  // actually waiting for them.
  std::size_t done = 0;
  while (done < n) {
    int w = 0;
    for (int k = 1; k < workers; ++k) {
      if (worker_free[static_cast<std::size_t>(k)] <
          worker_free[static_cast<std::size_t>(w)]) {
        w = k;
      }
    }
    std::size_t best = 0;
    double best_start = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < ready.size(); ++r) {
      const ReplayDag::Task& t =
          dag.tasks[static_cast<std::size_t>(ready[r])];
      double start = worker_free[static_cast<std::size_t>(w)];
      for (std::size_t p = 0; p < t.preds.size(); ++p) {
        const std::size_t pi = static_cast<std::size_t>(t.preds[p]);
        double arrive = finish[pi];
        if (placed[pi] != w) arrive += t.pred_comm_ns[p];
        start = std::max(start, arrive);
      }
      if (start < best_start ||
          (start == best_start && ready[r] < ready[best])) {
        best_start = start;
        best = r;
      }
    }
    const std::int32_t ti = ready[best];
    ready[best] = ready.back();
    ready.pop_back();
    const ReplayDag::Task& t = dag.tasks[static_cast<std::size_t>(ti)];
    double dur = t.dur_ns;
    if (scale != nullptr) dur *= (*scale)[static_cast<std::size_t>(ti)];
    finish[static_cast<std::size_t>(ti)] = best_start + dur;
    placed[static_cast<std::size_t>(ti)] = w;
    worker_free[static_cast<std::size_t>(w)] = best_start + dur;
    for (std::int32_t s : dag.succs[static_cast<std::size_t>(ti)]) {
      if (--missing[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
    ++done;
  }
  double makespan = 0.0;
  for (double f : finish) makespan = std::max(makespan, f);
  return makespan / 1e6;
}

double replay_node_speedup_ms(const ReplayDag& dag, int workers, NodeId node,
                              double factor) {
  std::vector<double> scale(dag.tasks.size(), 1.0);
  for (std::size_t i = 0; i < dag.tasks.size(); ++i) {
    if (dag.tasks[i].node == node) scale[i] = 1.0 / factor;
  }
  return replay_ms(dag, workers, &scale);
}

}  // namespace ramiel::prof
