// Coz-style what-if estimation over a recorded run.
//
// build_replay_dag() freezes what actually happened — one task per recorded
// (node, sample) event with its measured duration, data edges from the
// graph restricted to tasks that really executed, and a per-edge comm cost
// charged when producer and consumer land on different workers. replay_ms()
// then list-schedules that DAG greedily (earliest-ready first onto the
// earliest-free worker, the same idealization sim/simulate_steal uses), so
// "what if node X were 2x faster" or "what if we had one more worker" are
// answered by re-running the schedule with durations or worker count
// changed — no re-execution, no re-measurement.
//
// Fidelity note: the replay is an estimator, not a re-simulation of either
// executor's exact policy. CriticalPathReport.replay_ms records the
// unmodified-DAG replay so callers can see the baseline gap; what-if deltas
// are quoted against that baseline, which cancels most of the policy error
// (cross-checked against src/sim/ on the model zoo in bench/ and tests/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "rt/profiler.h"

namespace ramiel::prof {

/// The executed task DAG with measured durations and comm costs.
struct ReplayDag {
  struct Task {
    NodeId node = kNoNode;
    int sample = 0;
    double dur_ns = 0.0;
    std::vector<std::int32_t> preds;   // indices into tasks
    std::vector<double> pred_comm_ns;  // cost if that pred is cross-worker
  };
  std::vector<Task> tasks;                       // topological order
  std::vector<std::vector<std::int32_t>> succs;  // forward edges
  int workers = 1;                               // recorded worker count
};

/// Comm model for cross-worker edges in the replay.
struct ReplayComm {
  double fixed_ns = 0.0;
  double ns_per_byte = 0.0;
};

/// Estimates the comm model from the profile's recorded messages (median
/// per-message latency split into a fixed floor and a per-byte slope).
/// Returns {0, 0} when the profile recorded no consumed messages.
ReplayComm estimate_comm(const Profile& profile);

/// Builds the replay DAG from a recorded profile. Only (node, sample) pairs
/// with a recorded event become tasks; data edges whose producer never
/// executed (constants, graph inputs) are dropped. Per-task comm cost uses
/// the producing value's shape (4-byte floats).
ReplayDag build_replay_dag(const Graph& graph, const Profile& profile,
                           const ReplayComm& comm);

/// Greedy list-schedule makespan of the DAG on `workers` workers, in ms.
/// `scale` (optional, per-task) multiplies each task's recorded duration —
/// the what-if hook. Comm cost is charged when a task's latest data
/// predecessor was scheduled on a different worker.
double replay_ms(const ReplayDag& dag, int workers,
                 const std::vector<double>* scale = nullptr);

/// Convenience: replay with every instance of `node` sped up `factor`x.
double replay_node_speedup_ms(const ReplayDag& dag, int workers, NodeId node,
                              double factor);

}  // namespace ramiel::prof
