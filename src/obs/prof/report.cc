// CriticalPathReport renderers: strict JSON (embedded as the
// `critical_path` block of run/serve reports) and a compact human summary
// for the CLIs.
#include <cstdio>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/prof/critical_path.h"

namespace ramiel::prof {
namespace {

using obs::json_number;
using obs::json_quote;

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::string pct(double share) { return fmt("%.1f%%", share * 100.0); }

}  // namespace

std::string CriticalPathReport::to_json() const {
  std::ostringstream os;
  os << "{\"valid\":" << (valid ? "true" : "false")
     << ",\"wall_ms\":" << json_number(wall_ms)
     << ",\"compute_ms\":" << json_number(compute_ms)
     << ",\"comm_ms\":" << json_number(comm_ms)
     << ",\"queue_ms\":" << json_number(queue_ms)
     << ",\"idle_ms\":" << json_number(idle_ms)
     << ",\"tasks\":" << tasks
     << ",\"path_tasks\":" << path_tasks
     << ",\"workers\":" << workers
     << ",\"replay_ms\":" << json_number(replay_ms);
  os << ",\"ops\":[";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpAttribution& a = ops[i];
    if (i != 0) os << ',';
    os << "{\"node\":" << a.node << ",\"name\":" << json_quote(a.name)
       << ",\"op\":" << json_quote(a.op) << ",\"cluster\":" << a.cluster
       << ",\"tasks\":" << a.tasks << ",\"path_tasks\":" << a.path_tasks
       << ",\"self_ms\":" << json_number(a.self_ms)
       << ",\"critpath_ms\":" << json_number(a.critpath_ms)
       << ",\"self_share\":" << json_number(a.self_share)
       << ",\"critpath_share\":" << json_number(a.critpath_share) << '}';
  }
  os << "],\"clusters\":[";
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const ClusterAttribution& c = clusters[i];
    if (i != 0) os << ',';
    os << "{\"cluster\":" << c.cluster
       << ",\"compute_ms\":" << json_number(c.compute_ms)
       << ",\"comm_ms\":" << json_number(c.comm_ms)
       << ",\"queue_ms\":" << json_number(c.queue_ms)
       << ",\"critpath_share\":" << json_number(c.critpath_share) << '}';
  }
  os << "],\"worker_stats\":[";
  for (std::size_t i = 0; i < worker_stats.size(); ++i) {
    const WorkerAttribution& w = worker_stats[i];
    if (i != 0) os << ',';
    os << "{\"worker\":" << w.worker << ",\"tasks\":" << w.tasks
       << ",\"busy_ms\":" << json_number(w.busy_ms)
       << ",\"idle_ms\":" << json_number(w.idle_ms)
       << ",\"path_ms\":" << json_number(w.path_ms) << '}';
  }
  os << "],\"what_if\":[";
  for (std::size_t i = 0; i < what_ifs.size(); ++i) {
    const WhatIf& w = what_ifs[i];
    if (i != 0) os << ',';
    os << "{\"scenario\":" << json_quote(w.scenario)
       << ",\"baseline_ms\":" << json_number(w.baseline_ms)
       << ",\"predicted_ms\":" << json_number(w.predicted_ms)
       << ",\"speedup\":" << json_number(w.speedup) << '}';
  }
  os << "],\"path\":[";
  for (std::size_t i = 0; i < path.size(); ++i) {
    const PathStep& s = path[i];
    if (i != 0) os << ',';
    os << "{\"kind\":" << json_quote(segment_name(s.kind))
       << ",\"node\":" << s.node << ",\"sample\":" << s.sample
       << ",\"worker\":" << s.worker << ",\"begin_ns\":" << s.begin_ns
       << ",\"end_ns\":" << s.end_ns << ",\"ms\":" << json_number(s.ms())
       << '}';
  }
  os << "]}";
  return os.str();
}

std::string CriticalPathReport::summary() const {
  std::ostringstream os;
  if (!valid) {
    os << "critical path : no task events recorded (run with tracing or "
          "profiling on)\n";
    return os.str();
  }
  const double w = wall_ms > 0 ? wall_ms : 1.0;
  os << "critical path : " << fmt("%.2f", compute_ms) << " ms compute ("
     << pct(compute_ms / w) << ") + " << fmt("%.2f", comm_ms) << " ms comm ("
     << pct(comm_ms / w) << ") + " << fmt("%.2f", queue_ms) << " ms queue ("
     << pct(queue_ms / w) << ") + " << fmt("%.2f", idle_ms) << " ms idle ("
     << pct(idle_ms / w) << ") = " << fmt("%.2f", wall_ms) << " ms wall\n";
  os << "                " << path_tasks << "/" << tasks
     << " tasks on path across " << workers
     << (workers == 1 ? " worker\n" : " workers\n");
  if (!ops.empty()) {
    os << "top path ops  :\n";
    std::size_t shown = 0;
    for (const OpAttribution& a : ops) {
      if (shown++ == 5) break;
      os << "  " << a.name << " [" << a.op << "]";
      if (a.cluster >= 0) os << " c" << a.cluster;
      os << "  " << pct(a.critpath_share) << " of path (self "
         << pct(a.self_share) << " of kernel time, " << a.path_tasks << "/"
         << a.tasks << " instances)\n";
    }
  }
  if (!what_ifs.empty()) {
    os << "what-if       :\n";
    for (const WhatIf& wi : what_ifs) {
      os << "  " << wi.scenario << " -> " << fmt("%.2f", wi.predicted_ms)
         << " ms (" << fmt("%.2f", wi.speedup) << "x vs "
         << fmt("%.2f", wi.baseline_ms) << " ms replay)\n";
    }
  }
  return os.str();
}

}  // namespace ramiel::prof
