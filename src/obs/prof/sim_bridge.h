// Bridges the discrete-event simulator into the profiler: a SimResult's
// virtual-time TaskEvents become a Profile the critical-path analyzer and
// what-if replay consume unchanged. This is how the what-if estimator is
// cross-checked deterministically on a one-core container — both the
// analyzer's prediction and the reference re-simulation live in the same
// virtual cost world (see bench/profiler_whatif.cc and tests/prof_test.cc).
#pragma once

#include "rt/profiler.h"
#include "sim/simulator.h"

namespace ramiel::prof {

/// Packages a traced SimResult (SimOptions.trace = true) as a Profile.
/// Event times are already nanoseconds of virtual time; the window is
/// [0, makespan].
Profile profile_from_sim(const SimResult& sim);

}  // namespace ramiel::prof
