#include "obs/prof/critical_path.h"

#include <algorithm>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/op_kind.h"
#include "obs/metrics.h"
#include "obs/prof/whatif.h"

namespace ramiel::prof {
namespace {

/// Cluster of a task under the static placement; -1 when `hc` is absent or
/// does not cover the task (e.g. a sequential-executor profile).
int cluster_of(const Hyperclustering& hc, NodeId node, int sample) {
  if (hc.num_nodes <= 0 || node < 0 || node >= hc.num_nodes ||
      sample < 0 || sample >= hc.batch) {
    return -1;
  }
  return hc.worker(node, sample);
}

struct Walker {
  const Profile& profile;
  // Events sorted per worker by start (workers execute serially, so this is
  // also end order); pos_in_worker[i] = index of event i in its worker list.
  std::vector<std::vector<std::int32_t>> by_worker;
  std::vector<std::int32_t> pos_in_worker;
  // Data predecessors of event i (indices into profile.events).
  std::vector<std::vector<std::int32_t>> data_preds;

  explicit Walker(const Graph& graph, const Profile& p) : profile(p) {
    const std::size_t n = p.events.size();
    int max_worker = 0;
    for (const TaskEvent& e : p.events) {
      max_worker = std::max(max_worker, e.worker);
    }
    by_worker.resize(static_cast<std::size_t>(max_worker) + 1);
    pos_in_worker.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      by_worker[static_cast<std::size_t>(p.events[i].worker)].push_back(
          static_cast<std::int32_t>(i));
    }
    for (auto& lane : by_worker) {
      std::sort(lane.begin(), lane.end(),
                [&](std::int32_t a, std::int32_t b) {
                  const TaskEvent& ea = p.events[static_cast<std::size_t>(a)];
                  const TaskEvent& eb = p.events[static_cast<std::size_t>(b)];
                  if (ea.start_ns != eb.start_ns) {
                    return ea.start_ns < eb.start_ns;
                  }
                  return a < b;
                });
      for (std::size_t k = 0; k < lane.size(); ++k) {
        pos_in_worker[static_cast<std::size_t>(lane[k])] =
            static_cast<std::int32_t>(k);
      }
    }
    std::map<std::pair<NodeId, int>, std::int32_t> index;
    for (std::size_t i = 0; i < n; ++i) {
      index[{p.events[i].node, p.events[i].sample}] =
          static_cast<std::int32_t>(i);
    }
    data_preds.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const TaskEvent& e = p.events[i];
      for (ValueId v : graph.node(e.node).inputs) {
        const Value& val = graph.value(v);
        // Constant values impose no dependency (the executors and the
        // simulator treat them as available from time zero), and a recorded
        // "producer" that finished after this task started cannot have
        // bound its start — the simulator schedules free-standing
        // zero-cost tasks lazily, so such inversions do occur.
        if (val.is_constant()) continue;
        const NodeId prod = val.producer;
        if (prod == kNoNode) continue;
        auto it = index.find({prod, e.sample});
        if (it == index.end()) continue;
        if (p.events[static_cast<std::size_t>(it->second)].end_ns >
            e.start_ns) {
          continue;
        }
        auto& preds = data_preds[i];
        if (std::find(preds.begin(), preds.end(), it->second) ==
            preds.end()) {
          preds.push_back(it->second);
        }
      }
    }
  }

  /// Latest-finishing data predecessor of event i, or -1.
  std::int32_t latest_data_pred(std::size_t i) const {
    std::int32_t best = -1;
    for (std::int32_t p : data_preds[i]) {
      if (best < 0 || profile.events[static_cast<std::size_t>(p)].end_ns >
                          profile.events[static_cast<std::size_t>(best)]
                              .end_ns) {
        best = p;
      }
    }
    return best;
  }

  /// Previous event on event i's worker, or -1 (worker lanes are serial).
  std::int32_t worker_pred(std::size_t i) const {
    const std::int32_t pos = pos_in_worker[i];
    if (pos == 0) return -1;
    return by_worker[static_cast<std::size_t>(profile.events[i].worker)]
                    [static_cast<std::size_t>(pos) - 1];
  }
};

}  // namespace

const char* segment_name(Segment kind) {
  switch (kind) {
    case Segment::kCompute: return "compute";
    case Segment::kComm: return "comm";
    case Segment::kQueue: return "queue";
    case Segment::kIdle: return "idle";
  }
  return "?";
}

std::vector<std::pair<NodeId, int>> CriticalPathReport::critical_tasks()
    const {
  std::vector<std::pair<NodeId, int>> tasks;
  for (const PathStep& s : path) {
    if (s.kind == Segment::kCompute) tasks.emplace_back(s.node, s.sample);
  }
  return tasks;
}

CriticalPathReport analyze(const Graph& graph, const Hyperclustering& hc,
                           const Profile& profile,
                           const AnalyzeOptions& options) {
  CriticalPathReport report;
  report.workers = static_cast<int>(profile.workers.size());
  report.tasks = static_cast<int>(profile.events.size());
  if (profile.events.empty()) {
    report.wall_ms = profile.wall_ms;
    report.idle_ms = profile.wall_ms;
    return report;
  }
  report.valid = true;

  // Profiled window. The executors stamp start/end around the whole run;
  // fall back to event extents for hand-built profiles, and widen so every
  // event lies inside (the decomposition tiles exactly this interval).
  std::int64_t window_begin = profile.start_ns;
  std::int64_t window_end = profile.end_ns;
  if (window_begin == 0 && window_end == 0) {
    window_begin = profile.events.front().start_ns;
    window_end = profile.events.front().end_ns;
  }
  std::size_t last = 0;
  for (std::size_t i = 0; i < profile.events.size(); ++i) {
    const TaskEvent& e = profile.events[i];
    window_begin = std::min(window_begin, e.start_ns);
    window_end = std::max(window_end, e.end_ns);
    if (e.end_ns > profile.events[last].end_ns) last = i;
  }
  report.wall_ms = static_cast<double>(window_end - window_begin) / 1e6;

  // Backward walk from the last-finishing task. Each iteration emits the
  // current task's compute slice and then the gap back to whichever
  // constraint bound its start: the latest data predecessor (comm when it
  // ran on another worker, queue when same-worker) or the previous task on
  // the same worker lane (queue). Segments are emitted back-to-back, so
  // they tile [window_begin, window_end] exactly.
  const Walker walker(graph, profile);
  std::vector<PathStep> steps;
  std::vector<char> visited(profile.events.size(), 0);
  std::int64_t cur = window_end;
  std::size_t t = last;
  visited[t] = 1;
  {
    const TaskEvent& e = profile.events[t];
    if (e.end_ns < cur) {
      steps.push_back({Segment::kIdle, kNoNode, 0, -1, e.end_ns, cur});
      cur = e.end_ns;
    }
  }
  for (;;) {
    const TaskEvent& e = profile.events[t];
    const std::int64_t begin = std::min(e.start_ns, cur);
    if (begin < cur) {
      steps.push_back(
          {Segment::kCompute, e.node, e.sample, e.worker, begin, cur});
      cur = begin;
    }
    // A pred already on the path would close a cycle — only possible for
    // inconsistent hand-built profiles, but the walk must terminate on any
    // input, so such candidates are treated as absent.
    std::int32_t dp = walker.latest_data_pred(t);
    std::int32_t wp = walker.worker_pred(t);
    if (dp >= 0 && visited[static_cast<std::size_t>(dp)]) dp = -1;
    if (wp >= 0 && visited[static_cast<std::size_t>(wp)]) wp = -1;
    if (dp < 0 && wp < 0) {
      if (window_begin < cur) {
        steps.push_back(
            {Segment::kIdle, e.node, e.sample, e.worker, window_begin, cur});
        cur = window_begin;
      }
      break;
    }
    std::int32_t pred;
    Segment kind;
    const std::int64_t dp_end =
        dp < 0 ? std::numeric_limits<std::int64_t>::min()
               : profile.events[static_cast<std::size_t>(dp)].end_ns;
    const std::int64_t wp_end =
        wp < 0 ? std::numeric_limits<std::int64_t>::min()
               : profile.events[static_cast<std::size_t>(wp)].end_ns;
    if (dp >= 0 && dp_end >= wp_end) {
      pred = dp;
      kind = profile.events[static_cast<std::size_t>(dp)].worker != e.worker
                 ? Segment::kComm
                 : Segment::kQueue;
    } else {
      pred = wp;
      kind = Segment::kQueue;
    }
    const std::int64_t gap_begin = std::min(
        std::max(profile.events[static_cast<std::size_t>(pred)].end_ns,
                 window_begin),
        cur);
    if (gap_begin < cur) {
      steps.push_back({kind, e.node, e.sample, e.worker, gap_begin, cur});
      cur = gap_begin;
    }
    t = static_cast<std::size_t>(pred);
    visited[t] = 1;
  }
  std::reverse(steps.begin(), steps.end());

  // -- aggregate --------------------------------------------------------

  std::map<NodeId, OpAttribution> ops;
  double total_kernel_ms = 0.0;
  for (const TaskEvent& e : profile.events) {
    OpAttribution& a = ops[e.node];
    if (a.tasks == 0) {
      const Node& n = graph.node(e.node);
      a.node = e.node;
      a.name = n.name;
      a.op = op_kind_name(n.kind);
      a.cluster = cluster_of(hc, e.node, e.sample);
    }
    ++a.tasks;
    a.self_ms += static_cast<double>(e.end_ns - e.start_ns) / 1e6;
    total_kernel_ms += static_cast<double>(e.end_ns - e.start_ns) / 1e6;
  }

  std::map<int, ClusterAttribution> clusters;
  std::map<int, WorkerAttribution> workers;
  for (const PathStep& s : steps) {
    const double ms = s.ms();
    switch (s.kind) {
      case Segment::kCompute: report.compute_ms += ms; break;
      case Segment::kComm: report.comm_ms += ms; break;
      case Segment::kQueue: report.queue_ms += ms; break;
      case Segment::kIdle: report.idle_ms += ms; break;
    }
    if (s.node == kNoNode) continue;
    if (s.kind == Segment::kIdle) continue;
    OpAttribution& a = ops[s.node];
    a.critpath_ms += ms;
    if (s.kind == Segment::kCompute) {
      ++a.path_tasks;
      ++report.path_tasks;
    }
    const int c = cluster_of(hc, s.node, s.sample);
    ClusterAttribution& ca = clusters[c];
    ca.cluster = c;
    switch (s.kind) {
      case Segment::kCompute: ca.compute_ms += ms; break;
      case Segment::kComm: ca.comm_ms += ms; break;
      case Segment::kQueue: ca.queue_ms += ms; break;
      case Segment::kIdle: break;
    }
    if (s.worker >= 0) {
      WorkerAttribution& wa = workers[s.worker];
      wa.worker = s.worker;
      wa.path_ms += ms;
    }
  }

  for (auto& [node, a] : ops) {
    if (total_kernel_ms > 0) a.self_share = a.self_ms / total_kernel_ms;
    if (report.wall_ms > 0) a.critpath_share = a.critpath_ms / report.wall_ms;
  }
  for (auto& [c, ca] : clusters) {
    if (report.wall_ms > 0) {
      ca.critpath_share =
          (ca.compute_ms + ca.comm_ms + ca.queue_ms) / report.wall_ms;
    }
    report.clusters.push_back(ca);
  }
  for (std::size_t w = 0; w < profile.workers.size(); ++w) {
    WorkerAttribution& wa = workers[static_cast<int>(w)];
    wa.worker = static_cast<int>(w);
    wa.tasks = profile.workers[w].tasks;
    wa.busy_ms = static_cast<double>(profile.workers[w].busy_ns) / 1e6;
    wa.idle_ms = std::max(0.0, report.wall_ms - wa.busy_ms);
  }
  for (auto& [w, wa] : workers) report.worker_stats.push_back(wa);

  report.ops.reserve(ops.size());
  for (auto& [node, a] : ops) report.ops.push_back(std::move(a));
  std::sort(report.ops.begin(), report.ops.end(),
            [](const OpAttribution& x, const OpAttribution& y) {
              if (x.critpath_ms != y.critpath_ms) {
                return x.critpath_ms > y.critpath_ms;
              }
              if (x.self_ms != y.self_ms) return x.self_ms > y.self_ms;
              return x.node < y.node;
            });
  if (options.top_ops > 0 &&
      report.ops.size() > static_cast<std::size_t>(options.top_ops)) {
    report.ops.resize(static_cast<std::size_t>(options.top_ops));
  }

  // -- what-if ----------------------------------------------------------

  if (options.what_if) {
    ReplayComm comm;
    if (options.comm_ns_per_byte >= 0 || options.comm_fixed_ns >= 0) {
      comm.ns_per_byte = std::max(0.0, options.comm_ns_per_byte);
      comm.fixed_ns = std::max(0.0, options.comm_fixed_ns);
    } else {
      comm = estimate_comm(profile);
    }
    const ReplayDag dag = build_replay_dag(graph, profile, comm);
    const int k = dag.workers;
    report.replay_ms = replay_ms(dag, k);
    auto add = [&](const std::string& scenario, double predicted) {
      WhatIf w;
      w.scenario = scenario;
      w.baseline_ms = report.replay_ms;
      w.predicted_ms = predicted;
      w.speedup = predicted > 0 ? report.replay_ms / predicted : 0.0;
      report.what_ifs.push_back(std::move(w));
    };
    int listed = 0;
    for (const OpAttribution& a : report.ops) {
      if (listed >= options.what_if_ops) break;
      if (a.critpath_ms <= 0) break;
      add("2x " + a.name,
          replay_node_speedup_ms(dag, k, a.node, 2.0));
      ++listed;
    }
    add("workers+1", replay_ms(dag, k + 1));
    if (k > 1) {
      add("workers-1", replay_ms(dag, k - 1));
      add("workers*2", replay_ms(dag, 2 * k));
    }
  }

  if (options.keep_path) report.path = std::move(steps);
  return report;
}

void publish(const CriticalPathReport& report, obs::Registry* registry) {
  obs::Registry& reg = registry != nullptr ? *registry : obs::registry();
  reg.gauge("ramiel_critpath_compute_ms",
            "Critical-path compute time of the last analyzed run (ms)")
      ->set(report.compute_ms);
  reg.gauge("ramiel_critpath_comm_ms",
            "Critical-path cross-worker data-wait time (ms)")
      ->set(report.comm_ms);
  reg.gauge("ramiel_critpath_queue_ms",
            "Critical-path same-worker queueing time (ms)")
      ->set(report.queue_ms);
  reg.gauge("ramiel_critpath_idle_ms",
            "Critical-path unattributed idle time (ms)")
      ->set(report.idle_ms);
  for (const ClusterAttribution& c : report.clusters) {
    if (c.cluster < 0) continue;
    reg.gauge("ramiel_critpath_cluster_share",
              "Share of the realized critical path spent in each cluster",
              {{"cluster", std::to_string(c.cluster)}})
        ->set(c.critpath_share);
  }
}

}  // namespace ramiel::prof
