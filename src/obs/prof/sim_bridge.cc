#include "obs/prof/sim_bridge.h"

#include <algorithm>
#include <cmath>

namespace ramiel::prof {

Profile profile_from_sim(const SimResult& sim) {
  Profile p;
  p.events = sim.events;
  p.wall_ms = sim.makespan_ms;
  p.start_ns = 0;
  p.end_ns = static_cast<std::int64_t>(std::llround(sim.makespan_ms * 1e6));
  for (const TaskEvent& e : sim.events) {
    p.end_ns = std::max(p.end_ns, e.end_ns);
  }
  p.workers.resize(sim.workers.size());
  for (std::size_t w = 0; w < sim.workers.size(); ++w) {
    p.workers[w].busy_ns =
        static_cast<std::int64_t>(std::llround(sim.workers[w].busy_us * 1e3));
    p.workers[w].recv_wait_ns = static_cast<std::int64_t>(
        std::llround(sim.workers[w].slack_us * 1e3));
    p.workers[w].tasks = sim.workers[w].tasks;
    p.workers[w].messages_sent = sim.workers[w].messages_sent;
  }
  return p;
}

}  // namespace ramiel::prof
