// Minimal JSON emission helpers shared by every exporter in the tree
// (metrics registry, trace timeline, compile reports, serving snapshots).
// Routing all emitters through json_escape is what keeps a node named
// `conv_3x3"dw` or a Windows-style path in an error string from producing
// unparseable trace files.
#pragma once

#include <string>
#include <string_view>

namespace ramiel::obs {

/// Escapes `s` for embedding inside a JSON string literal (no surrounding
/// quotes added): `"` and `\` are backslash-escaped, control characters
/// become \n, \t, \r, \b, \f or \u00XX.
std::string json_escape(std::string_view s);

/// json_escape with surrounding double quotes — a complete JSON string.
std::string json_quote(std::string_view s);

/// Formats a double as a JSON number. NaN and infinities (illegal in JSON)
/// are emitted as null.
std::string json_number(double v);

}  // namespace ramiel::obs
