#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/metrics.h"

namespace ramiel::obs {
namespace {

/// Chrome trace timestamps are microseconds; emit fractional µs so
/// nanosecond-resolution kernel spans don't collapse to zero width.
std::string ts_us(std::int64_t ns) {
  return json_number(static_cast<double>(ns) / 1e3);
}

Counter* dropped_spans_total() {
  static Counter* c = registry().counter(
      "ramiel_trace_dropped_spans_total",
      "Trace timeline events overwritten because the span ring was full");
  return c;
}

}  // namespace

Timeline::Timeline(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void Timeline::push(Event e) {
  if (e.ph == 'M') {  // track names survive any amount of ring wrapping
    meta_.push_back(std::move(e));
    return;
  }
  if (events_.size() < capacity_) {
    events_.push_back(std::move(e));
    return;
  }
  events_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
  dropped_spans_total()->inc();
}

void Timeline::span(std::string name, std::string cat, int pid, int tid,
                    std::int64_t start_ns, std::int64_t end_ns,
                    std::vector<Arg> args) {
  Event e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  e.args = std::move(args);
  push(std::move(e));
}

void Timeline::instant(std::string name, std::string cat, int pid, int tid,
                       std::int64_t ts_ns, std::vector<Arg> args) {
  Event e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.args = std::move(args);
  push(std::move(e));
}

void Timeline::counter(std::string name, int pid, std::int64_t ts_ns,
                       double value) {
  Event e;
  e.name = std::move(name);
  e.ph = 'C';
  e.pid = pid;
  e.ts_ns = ts_ns;
  e.counter_value = value;
  push(std::move(e));
}

void Timeline::flow(std::string name, std::string cat, std::uint64_t id,
                    int src_pid, int src_tid, std::int64_t send_ns,
                    int dst_pid, int dst_tid, std::int64_t recv_ns) {
  Event s;
  s.name = name;
  s.cat = cat;
  s.ph = 's';
  s.pid = src_pid;
  s.tid = src_tid;
  s.ts_ns = send_ns;
  s.flow_id = id;
  s.has_flow_id = true;
  push(std::move(s));

  Event f;
  f.name = std::move(name);
  f.cat = std::move(cat);
  f.ph = 'f';
  f.pid = dst_pid;
  f.tid = dst_tid;
  // Perfetto requires the flow-end timestamp to be >= the start's.
  f.ts_ns = recv_ns >= send_ns ? recv_ns : send_ns;
  f.flow_id = id;
  f.has_flow_id = true;
  push(std::move(f));
}

void Timeline::process_name(int pid, std::string name) {
  Event e;
  e.name = "process_name";
  e.ph = 'M';
  e.pid = pid;
  e.args.emplace_back("name", std::move(name));
  push(std::move(e));
}

void Timeline::thread_name(int pid, int tid, std::string name) {
  Event e;
  e.name = "thread_name";
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.args.emplace_back("name", std::move(name));
  push(std::move(e));
}

std::string Timeline::to_chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Metadata first, then ring contents oldest-to-newest.
  std::vector<const Event*> ordered;
  ordered.reserve(meta_.size() + events_.size());
  for (const Event& e : meta_) ordered.push_back(&e);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    ordered.push_back(&events_[(head_ + i) % events_.size()]);
  }
  for (const Event* ep : ordered) {
    const Event& e = *ep;
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":" + json_quote(e.name);
    if (!e.cat.empty()) out += ",\"cat\":" + json_quote(e.cat);
    out += ",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":" + std::to_string(e.pid) +
           ",\"tid\":" + std::to_string(e.tid);
    if (e.ph != 'M') out += ",\"ts\":" + ts_us(e.ts_ns);
    if (e.ph == 'X') out += ",\"dur\":" + ts_us(e.dur_ns);
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    if (e.has_flow_id) {
      out += ",\"id\":" + std::to_string(e.flow_id);
      if (e.ph == 'f') out += ",\"bp\":\"e\"";
    }
    if (e.ph == 'C') {
      out += ",\"args\":{\"value\":" + json_number(e.counter_value) + "}";
    } else if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const Arg& a : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += json_quote(a.key) + ":";
        out += a.is_number ? json_number(a.num) : json_quote(a.str);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace ramiel::obs
