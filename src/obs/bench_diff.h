// Benchmark trajectory comparator behind tools/ramiel_bench_diff.
//
// Understands both JSON shapes this repo commits (README "Benchmark
// trajectory"): the serve_throughput row array (objects with
// section/model/config identity plus metric fields) and google-benchmark's
// {"context", "benchmarks"} document from kernel_microbench. Rows are
// matched by identity across a base and a current file; each metric gets a
// signed regression percentage (positive = worse, direction-aware: *_ms
// and real_time regress upward, *_rps / speedup / GFLOPS regress
// downward). The CI bench job gates on regressions() beyond a threshold —
// this is what turns BENCH_*.json from a logbook into a ratchet.
#pragma once

#include <string>
#include <vector>

#include "obs/json_read.h"

namespace ramiel::obs {

struct BenchDelta {
  std::string row;     // "section/model/config" or benchmark name
  std::string metric;  // e.g. "measured_rps", "real_time"
  double base = 0.0;
  double current = 0.0;
  double change_pct = 0.0;  // signed; positive = regression
  bool higher_is_better = false;
};

struct BenchDiffOptions {
  double fail_threshold_pct = 10.0;  // gate: any metric worse than this
  double warn_threshold_pct = 3.0;   // report but do not gate
};

struct BenchDiffResult {
  std::vector<BenchDelta> deltas;       // every compared metric
  std::vector<std::string> missing;     // base rows absent from current
  std::vector<std::string> added;       // current rows absent from base
  double fail_threshold_pct = 0.0;
  double warn_threshold_pct = 0.0;

  std::vector<const BenchDelta*> regressions() const;  // > fail threshold
  std::vector<const BenchDelta*> warnings() const;     // (warn, fail]

  /// Whether the gate should fail: any regression, or base rows that
  /// silently disappeared (a deleted row is how you'd hide a regression).
  bool failed() const;

  /// Human-readable table plus verdict line (what the tool prints).
  std::string to_string() const;
};

/// Diffs two parsed bench documents of the same shape (auto-detected).
BenchDiffResult diff_bench(const JsonValue& base, const JsonValue& current,
                           const BenchDiffOptions& options = {});

/// Applies an artificial regression of `pct` percent to every metric in a
/// parsed bench document, in place (lower-is-better metrics scale up,
/// higher-is-better scale down). The CI gate's self-test: diffing a file
/// against its own injected copy must trip the threshold.
void inject_regression(JsonValue* doc, double pct);

}  // namespace ramiel::obs
