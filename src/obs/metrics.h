// Process-wide metrics registry (counters, gauges, fixed-bucket histograms)
// with Prometheus-text and JSON exporters.
//
// Design constraints, in order:
//   1. Hot-path writes must be cheap enough for runtime workers to bump
//      per-message counters: Counter shards its atomics across cache lines
//      so concurrent workers don't ping-pong one counter word; Gauge and
//      Histogram are single relaxed atomics. No metric write ever takes a
//      mutex.
//   2. Metric objects are created once (registry lookup under a mutex) and
//      then cached as raw pointers by the instrumented code; pointers stay
//      valid for the process lifetime (the registry never erases).
//   3. Series are identified Prometheus-style by (name, sorted labels), so
//      several servers/executors in one process coexist as distinct series
//      of one family (e.g. serve_requests_total{instance="0",...}).
//
// The process-wide instance is obs::registry(); tests that want isolation
// construct their own Registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ramiel::obs {

/// Sorted (key, value) label pairs identifying one series of a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter, sharded to keep concurrent writers off each other's
/// cache lines. value() sums the shards (not a consistent snapshot across
/// concurrent writers, like any Prometheus counter read).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    shard_for_thread().fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr int kShards = 16;

  std::atomic<std::uint64_t>& shard_for_thread();

  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value; add() is atomic (CAS loop), so
/// several threads may accumulate into one gauge.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (Prometheus `le` semantics); one implicit +Inf bucket catches the rest.
/// observe() is two relaxed atomic adds plus a branchless upper_bound over
/// a handful of doubles.
class Histogram {
 public:
  /// `bounds` must be strictly increasing (checked).
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, +Inf excluded
    std::vector<std::uint64_t> counts; // per-bucket (bounds.size() + 1)
    std::uint64_t count = 0;           // total observations
    double sum = 0.0;                  // sum of observed values
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default buckets for millisecond latencies (0.1 ms .. 10 s).
  static std::vector<double> latency_ms_buckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> family -> labeled series lookup plus the exporters.
class Registry {
 public:
  /// Gets or creates a series. A name registered once keeps its type and
  /// (for histograms) bucket bounds; re-registering with a different type
  /// throws. Returned pointers live as long as the registry.
  Counter* counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge* gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  Histogram* histogram(const std::string& name, const std::string& help = "",
                       std::vector<double> bounds = {},
                       const Labels& labels = {});

  /// Prometheus text exposition format (one HELP/TYPE header per family,
  /// one line per series; histograms expand to _bucket/_sum/_count).
  std::string to_prometheus() const;

  /// The same data as one JSON object keyed by family name.
  std::string to_json() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::vector<double> bounds;  // histogram families only
    std::deque<Series> series;   // deque: growth never moves elements
  };

  Family& family(const std::string& name, Type type, const std::string& help,
                 const std::vector<double>* bounds);
  Series& series(Family& fam, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// The process-wide registry every built-in subsystem reports into.
Registry& registry();

}  // namespace ramiel::obs
