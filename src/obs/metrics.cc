#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "obs/json.h"
#include "support/check.h"
#include "support/env.h"

namespace ramiel::obs {
namespace {

/// Renders {a="x",b="y"}; empty labels render as nothing. `extra` lets the
/// histogram exporter append an le="..." pair.
std::string label_string(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + json_escape(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string le_string(double bound) {
  if (std::isinf(bound)) return "le=\"+Inf\"";
  return "le=\"" + json_number(bound) + "\"";
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

std::atomic<std::uint64_t>& Counter::shard_for_thread() {
  // Thread-id hash is stable per thread, so a given worker always hits the
  // same shard; different workers usually hit different cache lines.
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % static_cast<std::size_t>(kShards)].v;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    RAMIEL_CHECK(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::vector<double> Histogram::latency_ms_buckets() {
  // RAMIEL_HIST_BUCKETS overrides the defaults (a deployment serving
  // sub-millisecond models wants finer low buckets than 0.1/0.25/0.5).
  // Read per call, not cached: histograms are created once at registration,
  // and tests flip the variable between registries.
  return env_hist_buckets({0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
                           500, 1000, 2500, 5000, 10000});
}

Registry::Family& Registry::family(const std::string& name, Type type,
                                   const std::string& help,
                                   const std::vector<double>* bounds) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.type = type;
    fam.help = help;
    if (bounds != nullptr) fam.bounds = *bounds;
  } else {
    RAMIEL_CHECK(fam.type == type,
                 "metric '" + name + "' re-registered with a different type");
  }
  return fam;
}

Registry::Series& Registry::series(Family& fam, const Labels& labels) {
  for (Series& s : fam.series) {
    if (s.labels == labels) return s;
  }
  fam.series.emplace_back();
  fam.series.back().labels = labels;
  return fam.series.back();
}

Counter* Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  Series& s = series(family(name, Type::kCounter, help, nullptr),
                     sorted(labels));
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return s.counter.get();
}

Gauge* Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  Series& s =
      series(family(name, Type::kGauge, help, nullptr), sorted(labels));
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return s.gauge.get();
}

Histogram* Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds,
                               const Labels& labels) {
  if (bounds.empty()) bounds = Histogram::latency_ms_buckets();
  std::lock_guard<std::mutex> lk(mu_);
  Family& fam = family(name, Type::kHistogram, help, &bounds);
  Series& s = series(fam, sorted(labels));
  if (!s.histogram) s.histogram = std::make_unique<Histogram>(fam.bounds);
  return s.histogram.get();
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " ";
    out += fam.type == Type::kCounter
               ? "counter"
               : (fam.type == Type::kGauge ? "gauge" : "histogram");
    out += "\n";
    for (const Series& s : fam.series) {
      switch (fam.type) {
        case Type::kCounter:
          out += name + label_string(s.labels) + " " +
                 std::to_string(s.counter->value()) + "\n";
          break;
        case Type::kGauge:
          out += name + label_string(s.labels) + " " +
                 json_number(s.gauge->value()) + "\n";
          break;
        case Type::kHistogram: {
          const Histogram::Snapshot snap = s.histogram->snapshot();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < snap.counts.size(); ++i) {
            cumulative += snap.counts[i];
            const double bound = i < snap.bounds.size()
                                     ? snap.bounds[i]
                                     : std::numeric_limits<double>::infinity();
            out += name + "_bucket" +
                   label_string(s.labels, le_string(bound)) + " " +
                   std::to_string(cumulative) + "\n";
          }
          out += name + "_sum" + label_string(s.labels) + " " +
                 json_number(snap.sum) + "\n";
          out += name + "_count" + label_string(s.labels) + " " +
                 std::to_string(snap.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{";
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    if (!first_fam) out += ",";
    first_fam = false;
    out += json_quote(name) + ":{\"type\":";
    out += fam.type == Type::kCounter
               ? "\"counter\""
               : (fam.type == Type::kGauge ? "\"gauge\"" : "\"histogram\"");
    if (!fam.help.empty()) out += ",\"help\":" + json_quote(fam.help);
    out += ",\"series\":[";
    bool first_series = true;
    for (const Series& s : fam.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : s.labels) {
        if (!first_label) out += ",";
        first_label = false;
        out += json_quote(k) + ":" + json_quote(v);
      }
      out += "}";
      switch (fam.type) {
        case Type::kCounter:
          out += ",\"value\":" + std::to_string(s.counter->value());
          break;
        case Type::kGauge:
          out += ",\"value\":" + json_number(s.gauge->value());
          break;
        case Type::kHistogram: {
          const Histogram::Snapshot snap = s.histogram->snapshot();
          out += ",\"bounds\":[";
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            if (i > 0) out += ",";
            out += json_number(snap.bounds[i]);
          }
          out += "],\"counts\":[";
          for (std::size_t i = 0; i < snap.counts.size(); ++i) {
            if (i > 0) out += ",";
            out += std::to_string(snap.counts[i]);
          }
          out += "],\"sum\":" + json_number(snap.sum) +
                 ",\"count\":" + std::to_string(snap.count);
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlive all users
  return *instance;
}

}  // namespace ramiel::obs
