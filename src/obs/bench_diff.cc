#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string_view>

namespace ramiel::obs {
namespace {

// Whether `key` is a comparable metric, and if so which way it points.
// Identity fields, workload counts (served/rejected depend on admission
// policy, not speed) and fill ratios are excluded; everything that names a
// rate or a latency is compared.
enum class Direction { kSkip, kHigher, kLower };

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Direction serve_metric_direction(std::string_view key) {
  if (key == "section" || key == "model" || key == "config") {
    return Direction::kSkip;
  }
  if (key == "served" || key == "rejected" || key == "failed" ||
      key == "batch_fill") {
    return Direction::kSkip;
  }
  if (ends_with(key, "_rps") || key == "speedup") return Direction::kHigher;
  if (ends_with(key, "_ms")) return Direction::kLower;
  return Direction::kSkip;
}

Direction kernel_metric_direction(std::string_view key) {
  if (key == "real_time" || key == "cpu_time") return Direction::kLower;
  if (key == "GFLOPS" || key == "items_per_second" ||
      key == "bytes_per_second") {
    return Direction::kHigher;
  }
  // Low-precision dtype rows gate on their ratio to the f32 baseline
  // measured in the same process (speedup_vs_f32); their absolute
  // throughput counters ("gflops", "eff_bandwidth") are host-dependent and
  // deliberately left uncompared.
  if (key.substr(0, 7) == "speedup") return Direction::kHigher;
  return Direction::kSkip;  // name, iterations, time_unit, run_type, ...
}

// Signed regression percentage: positive means `current` is worse.
double regression_pct(double base, double current, bool higher_is_better) {
  if (base == 0.0) return 0.0;  // no meaningful ratio
  const double change = (current - base) / std::fabs(base) * 100.0;
  return higher_is_better ? -change : change;
}

struct Row {
  std::string id;
  const JsonValue* value = nullptr;
};

// Flattens either bench document shape into identity-keyed rows.
std::vector<Row> collect_rows(const JsonValue& doc, bool* is_kernel) {
  std::vector<Row> rows;
  if (doc.is(JsonValue::Kind::kObject)) {
    *is_kernel = true;
    if (const JsonValue* benchmarks = doc.find("benchmarks");
        benchmarks != nullptr && benchmarks->is(JsonValue::Kind::kArray)) {
      for (const JsonValue& b : benchmarks->array) {
        rows.push_back({b.string_or("name", "?"), &b});
      }
    }
    return rows;
  }
  *is_kernel = false;
  if (doc.is(JsonValue::Kind::kArray)) {
    for (const JsonValue& r : doc.array) {
      rows.push_back({r.string_or("section", "?") + "/" +
                          r.string_or("model", "?") + "/" +
                          r.string_or("config", "?"),
                      &r});
    }
  }
  return rows;
}

}  // namespace

std::vector<const BenchDelta*> BenchDiffResult::regressions() const {
  std::vector<const BenchDelta*> out;
  for (const BenchDelta& d : deltas) {
    if (d.change_pct > fail_threshold_pct) out.push_back(&d);
  }
  return out;
}

std::vector<const BenchDelta*> BenchDiffResult::warnings() const {
  std::vector<const BenchDelta*> out;
  for (const BenchDelta& d : deltas) {
    if (d.change_pct > warn_threshold_pct &&
        d.change_pct <= fail_threshold_pct) {
      out.push_back(&d);
    }
  }
  return out;
}

bool BenchDiffResult::failed() const {
  return !regressions().empty() || !missing.empty();
}

std::string BenchDiffResult::to_string() const {
  std::string out;
  char line[512];

  const auto verdict = [&](const BenchDelta& d) -> const char* {
    if (d.change_pct > fail_threshold_pct) return "REGRESSION";
    if (d.change_pct > warn_threshold_pct) return "warn";
    if (d.change_pct < -warn_threshold_pct) return "improved";
    return "";
  };

  std::size_t row_width = 4;
  for (const BenchDelta& d : deltas) {
    row_width = std::max(row_width, d.row.size());
  }
  row_width = std::min<std::size_t>(row_width, 48);

  std::snprintf(line, sizeof line, "%-*s  %-14s %14s %14s %9s  %s\n",
                static_cast<int>(row_width), "row", "metric", "base",
                "current", "delta", "");
  out += line;
  for (const BenchDelta& d : deltas) {
    std::snprintf(line, sizeof line,
                  "%-*s  %-14s %14.4g %14.4g %+8.2f%%  %s\n",
                  static_cast<int>(row_width), d.row.c_str(),
                  d.metric.c_str(), d.base, d.current, d.change_pct,
                  verdict(d));
    out += line;
  }
  for (const std::string& id : missing) {
    out += "MISSING row (present in base, absent now): " + id + "\n";
  }
  for (const std::string& id : added) {
    out += "new row: " + id + "\n";
  }

  const std::size_t n_reg = regressions().size();
  const std::size_t n_warn = warnings().size();
  std::snprintf(line, sizeof line,
                "%zu metrics compared, %zu regression(s) beyond %.1f%%, "
                "%zu warning(s) beyond %.1f%%\n",
                deltas.size(), n_reg, fail_threshold_pct, n_warn,
                warn_threshold_pct);
  out += line;
  out += failed() ? "verdict: FAIL\n" : "verdict: OK\n";
  return out;
}

BenchDiffResult diff_bench(const JsonValue& base, const JsonValue& current,
                           const BenchDiffOptions& options) {
  BenchDiffResult result;
  result.fail_threshold_pct = options.fail_threshold_pct;
  result.warn_threshold_pct = options.warn_threshold_pct;

  bool base_kernel = false;
  bool current_kernel = false;
  const std::vector<Row> base_rows = collect_rows(base, &base_kernel);
  const std::vector<Row> current_rows = collect_rows(current, &current_kernel);
  const bool kernel = base_kernel || current_kernel;

  std::map<std::string, const JsonValue*> current_by_id;
  for (const Row& r : current_rows) current_by_id.emplace(r.id, r.value);

  std::set<std::string> base_ids;
  for (const Row& r : base_rows) {
    base_ids.insert(r.id);
    const auto it = current_by_id.find(r.id);
    if (it == current_by_id.end()) {
      result.missing.push_back(r.id);
      continue;
    }
    const JsonValue& cur = *it->second;
    for (const auto& [key, value] : r.value->object) {
      if (!value.is(JsonValue::Kind::kNumber)) continue;
      const Direction dir = kernel ? kernel_metric_direction(key)
                                   : serve_metric_direction(key);
      if (dir == Direction::kSkip) continue;
      const JsonValue* cv = cur.find(key);
      if (cv == nullptr || !cv->is(JsonValue::Kind::kNumber)) continue;
      BenchDelta d;
      d.row = r.id;
      d.metric = key;
      d.base = value.number;
      d.current = cv->number;
      d.higher_is_better = dir == Direction::kHigher;
      d.change_pct = regression_pct(d.base, d.current, d.higher_is_better);
      result.deltas.push_back(std::move(d));
    }
  }
  for (const Row& r : current_rows) {
    if (base_ids.count(r.id) == 0) result.added.push_back(r.id);
  }
  // Worst first, so the gate's culprit leads the report.
  std::stable_sort(result.deltas.begin(), result.deltas.end(),
                   [](const BenchDelta& a, const BenchDelta& b) {
                     return a.change_pct > b.change_pct;
                   });
  return result;
}

void inject_regression(JsonValue* doc, double pct) {
  bool kernel = false;
  std::vector<Row> rows = collect_rows(*doc, &kernel);
  const double worse = 1.0 + pct / 100.0;
  for (Row& r : rows) {
    auto* row = const_cast<JsonValue*>(r.value);
    for (auto& [key, value] : row->object) {
      if (!value.is(JsonValue::Kind::kNumber)) continue;
      const Direction dir = kernel ? kernel_metric_direction(key)
                                   : serve_metric_direction(key);
      if (dir == Direction::kSkip) continue;
      value.number = dir == Direction::kLower ? value.number * worse
                                              : value.number / worse;
    }
  }
}

}  // namespace ramiel::obs
