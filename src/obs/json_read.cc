#include "obs/json_read.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace ramiel::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      if (error != nullptr) *error = error_;
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue* out) {
    if (depth_ > 128) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    ++depth_;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue member;
      if (!value(&member)) return false;
      out->object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    ++depth_;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue element;
      if (!value(&element)) return false;
      out->array.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    ++pos_;  // opening quote
    std::string result;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        *out = std::move(result);
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        result += c;
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': result += '"'; break;
        case '\\': result += '\\'; break;
        case '/': result += '/'; break;
        case 'b': result += '\b'; break;
        case 'f': result += '\f'; break;
        case 'n': result += '\n'; break;
        case 'r': result += '\r'; break;
        case 't': result += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs land as two
          // 3-byte sequences — good enough for metric names).
          if (code < 0x80) {
            result += static_cast<char>(code);
          } else if (code < 0x800) {
            result += static_cast<char>(0xC0 | (code >> 6));
            result += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            result += static_cast<char>(0xE0 | (code >> 12));
            result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            result += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("invalid fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("invalid exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is(Kind::kNumber) ? v->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is(Kind::kString) ? v->str : fallback;
}

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text).parse(out, error);
}

}  // namespace ramiel::obs
