// Minimal recursive-descent JSON reader — the read-side complement of
// json.h's emitters. Exists for tools that consume the JSON this tree
// writes back (bench trajectory files, compile reports); strict RFC 8259
// syntax, no extensions, values land in one tagged struct. Not built for
// speed or huge documents.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ramiel::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion order preserved; duplicate keys keep both (first find() wins).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is(Kind k) const { return kind == k; }

  /// Object member lookup; nullptr when not an object or key absent.
  const JsonValue* find(std::string_view key) const;

  /// Member coercions for the flat row objects the bench files use.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key,
                        const std::string& fallback) const;
};

/// Parses a complete JSON document (leading/trailing whitespace allowed).
/// Returns false and fills `error` (when non-null) with a position-tagged
/// message on malformed input.
bool json_parse(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace ramiel::obs
