#include "mem/planner.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "mem/liveness.h"
#include "support/check.h"

namespace ramiel::mem {
namespace {

/// Sorted-by-offset hole list with coalescing on free.
class FreeList {
 public:
  /// Returns the offset of the smallest hole that fits `bytes`, or -1.
  std::int64_t take_best_fit(std::int64_t bytes) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(holes_.size()); ++i) {
      if (holes_[static_cast<std::size_t>(i)].bytes < bytes) continue;
      if (best < 0 || holes_[static_cast<std::size_t>(i)].bytes <
                          holes_[static_cast<std::size_t>(best)].bytes) {
        best = i;
      }
    }
    if (best < 0) return -1;
    Hole& h = holes_[static_cast<std::size_t>(best)];
    const std::int64_t offset = h.offset;
    h.offset += bytes;
    h.bytes -= bytes;
    if (h.bytes == 0) holes_.erase(holes_.begin() + best);
    return offset;
  }

  /// Returns [offset, offset+bytes) to the pool, merging adjacent holes.
  void give_back(std::int64_t offset, std::int64_t bytes) {
    auto it = std::lower_bound(
        holes_.begin(), holes_.end(), offset,
        [](const Hole& h, std::int64_t off) { return h.offset < off; });
    it = holes_.insert(it, Hole{offset, bytes});
    // Merge with the following hole.
    auto next = it + 1;
    if (next != holes_.end() && it->offset + it->bytes == next->offset) {
      it->bytes += next->bytes;
      it = holes_.erase(next) - 1;
    }
    // Merge with the preceding hole.
    if (it != holes_.begin()) {
      auto prev = it - 1;
      if (prev->offset + prev->bytes == it->offset) {
        prev->bytes += it->bytes;
        holes_.erase(it);
      }
    }
  }

 private:
  struct Hole {
    std::int64_t offset;
    std::int64_t bytes;
  };
  std::vector<Hole> holes_;
};

/// True when every input and the output of `n` have shape `out` — the
/// condition for the binary elementwise same-shape fast path (1:1 index,
/// read-then-write), which is what makes overwriting an input safe.
bool all_operands_match(const Graph& g, const Node& n, const Shape& out) {
  for (ValueId v : n.inputs) {
    if (!(g.value(v).shape == out)) return false;
  }
  return true;
}

}  // namespace

StreamPlan plan_stream(const Graph& g, const Hyperclustering& hc, int worker,
                       int sample) {
  const StreamLiveness lv = analyze_stream(g, hc, worker, sample);

  StreamPlan sp;
  FreeList holes;
  std::int64_t top = 0;  // high-water mark of the stream region
  // Live slots ordered by expiry: (last_step, slot index).
  std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                      std::greater<>>
      active;
  std::vector<char> transferred;  // slot donated in place; death frees nothing

  for (const ValueInterval& iv : lv.intervals) {
    if (iv.heap) continue;

    while (!active.empty() && active.top().first < iv.def_step) {
      const int si = active.top().second;
      active.pop();
      if (!transferred[static_cast<std::size_t>(si)]) {
        const ValueSlot& dead = sp.slots[static_cast<std::size_t>(si)];
        holes.give_back(dead.offset, dead.bytes);
      }
    }

    ValueSlot slot;
    slot.value = iv.value;
    slot.numel = iv.numel;
    slot.dtype = iv.dtype;
    slot.bytes = aligned_size(iv.bytes);
    slot.def_step = iv.def_step;
    slot.last_step = iv.last_step;
    sp.naive_bytes += slot.bytes;

    // In-place: inherit the slot of an input dying at this very step.
    const Node& n = g.node(g.value(iv.value).producer);
    const bool unary_ok = op_inplace_unary(n.kind);
    const bool binary_ok = op_inplace_binary(n.kind) &&
                           all_operands_match(g, n, g.value(iv.value).shape);
    if (unary_ok || binary_ok) {
      for (ValueId in : n.inputs) {
        auto rit = lv.root_of.find(in);
        if (rit == lv.root_of.end()) continue;
        const ValueId root = rit->second;
        const ValueInterval& src =
            lv.intervals[static_cast<std::size_t>(lv.interval_of.at(root))];
        if (src.heap || src.last_step != iv.def_step ||
            src.numel != iv.numel || src.dtype != iv.dtype) {
          continue;
        }
        auto sit = sp.slot_of.find(root);
        if (sit == sp.slot_of.end()) continue;
        if (transferred[static_cast<std::size_t>(sit->second)]) continue;
        const ValueSlot& donor = sp.slots[static_cast<std::size_t>(sit->second)];
        slot.offset = donor.offset;
        slot.bytes = donor.bytes;
        slot.in_place = true;
        slot.in_place_src = root;
        transferred[static_cast<std::size_t>(sit->second)] = 1;
        ++sp.in_place_count;
        break;
      }
    }

    if (!slot.in_place) {
      std::int64_t offset = holes.take_best_fit(slot.bytes);
      if (offset < 0) {
        offset = top;
        top += slot.bytes;
      }
      slot.offset = offset;
    }

    const int index = static_cast<int>(sp.slots.size());
    sp.slot_of[slot.value] = index;
    sp.slots.push_back(slot);
    transferred.push_back(0);
    active.emplace(slot.last_step, index);
  }

  sp.peak_bytes = top;
  return sp;
}

MemPlan plan_memory(const Graph& g, const Hyperclustering& hc) {
  MemPlan plan;
  for (int w = 0; w < static_cast<int>(hc.workers.size()); ++w) {
    WorkerPlan wp;
    for (int s = 0; s < hc.batch; ++s) {
      StreamPlan sp = plan_stream(g, hc, w, s);
      wp.stream_base.push_back(wp.arena_bytes);
      wp.arena_bytes += sp.peak_bytes;
      wp.naive_bytes += sp.naive_bytes;
      wp.in_place_count += sp.in_place_count;
      wp.streams.push_back(std::move(sp));
    }
    plan.peak_bytes += wp.arena_bytes;
    plan.naive_bytes += wp.naive_bytes;
    plan.in_place_count += wp.in_place_count;
    plan.workers.push_back(std::move(wp));
  }
  return plan;
}

}  // namespace ramiel::mem
