#include "mem/arena.h"

#include <cstring>
#include <new>
#include <utility>

#include "mem/plan.h"

namespace ramiel::mem {

MemArena::~MemArena() { release(); }

MemArena::MemArena(MemArena&& o) noexcept
    : data_(std::exchange(o.data_, nullptr)),
      capacity_(std::exchange(o.capacity_, 0)),
      scratch_(std::exchange(o.scratch_, nullptr)),
      scratch_capacity_(std::exchange(o.scratch_capacity_, 0)) {}

MemArena& MemArena::operator=(MemArena&& o) noexcept {
  if (this != &o) {
    release();
    data_ = std::exchange(o.data_, nullptr);
    capacity_ = std::exchange(o.capacity_, 0);
    scratch_ = std::exchange(o.scratch_, nullptr);
    scratch_capacity_ = std::exchange(o.scratch_capacity_, 0);
  }
  return *this;
}

void MemArena::release() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{kSlotAlign});
    data_ = nullptr;
    capacity_ = 0;
  }
  if (scratch_ != nullptr) {
    ::operator delete(scratch_, std::align_val_t{kSlotAlign});
    scratch_ = nullptr;
    scratch_capacity_ = 0;
  }
}

bool MemArena::ensure(std::size_t bytes) {
  if (bytes <= capacity_) return false;
  const bool grew = data_ != nullptr;
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{kSlotAlign});
    data_ = nullptr;
    capacity_ = 0;
  }
  data_ = static_cast<float*>(
      ::operator new(bytes, std::align_val_t{kSlotAlign}));
  capacity_ = bytes;
  return grew;
}

bool MemArena::ensure_scratch(std::size_t bytes) {
  if (bytes <= scratch_capacity_) return false;
  const bool grew = scratch_ != nullptr;
  if (scratch_ != nullptr) {
    ::operator delete(scratch_, std::align_val_t{kSlotAlign});
    scratch_ = nullptr;
    scratch_capacity_ = 0;
  }
  scratch_ = static_cast<float*>(
      ::operator new(bytes, std::align_val_t{kSlotAlign}));
  scratch_capacity_ = bytes;
  return grew;
}

namespace {

// Keep successive scratch sub-buffers cache-line aligned.
std::size_t round_up_floats(std::size_t numel) {
  const std::size_t per_line = kSlotAlign / sizeof(float);
  return (numel + per_line - 1) / per_line * per_line;
}

}  // namespace

float* SlotSink::take_scratch(std::size_t numel) {
  if (scratch_arena_ == nullptr || numel == 0) return nullptr;
  const std::size_t rounded = round_up_floats(numel);
  const std::size_t need_bytes = (scratch_off_ + rounded) * sizeof(float);
  if (need_bytes > scratch_arena_->scratch_capacity_bytes()) {
    // Growing is only safe with no scratch outstanding; otherwise the
    // reallocation would dangle the earlier sub-buffers.
    if (scratch_off_ != 0) return nullptr;
    scratch_arena_->ensure_scratch(need_bytes);
  }
  float* p = scratch_arena_->scratch_data() + scratch_off_;
  scratch_off_ += rounded;
  return p;
}

void SlotSink::release_scratch(float* ptr, std::size_t numel) {
  if (scratch_arena_ == nullptr) return;
  const std::size_t rounded = round_up_floats(numel);
  // LIFO release: only the most recent take can be returned. Anything else
  // indicates a heap buffer or out-of-order release; ignore it — the bump
  // offset resets with the next SlotSink::clear() anyway.
  if (rounded <= scratch_off_ &&
      ptr == scratch_arena_->scratch_data() + (scratch_off_ - rounded)) {
    scratch_off_ -= rounded;
  }
}

float* SlotSink::take(std::size_t numel, DType dtype) {
  const int alloc_index = allocs_seen_++;
  for (Slot& s : slots_) {
    // Matching requires the planned dtype too: an f32 temporary allocated
    // mid-kernel must never land in a slot sized for a half-width output.
    if (s.used || s.numel != numel || s.dtype != dtype) continue;
    if (s.in_place && alloc_index != 0) continue;
    s.used = true;
    ++taken_;
    if (!s.in_place) std::memset(s.ptr, 0, numel * dtype_size(dtype));
    return s.ptr;
  }
  return nullptr;
}

}  // namespace ramiel::mem
