#include "mem/arena.h"

#include <cstring>
#include <new>
#include <utility>

#include "mem/plan.h"

namespace ramiel::mem {

MemArena::~MemArena() { release(); }

MemArena::MemArena(MemArena&& o) noexcept
    : data_(std::exchange(o.data_, nullptr)),
      capacity_(std::exchange(o.capacity_, 0)) {}

MemArena& MemArena::operator=(MemArena&& o) noexcept {
  if (this != &o) {
    release();
    data_ = std::exchange(o.data_, nullptr);
    capacity_ = std::exchange(o.capacity_, 0);
  }
  return *this;
}

void MemArena::release() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{kSlotAlign});
    data_ = nullptr;
    capacity_ = 0;
  }
}

bool MemArena::ensure(std::size_t bytes) {
  if (bytes <= capacity_) return false;
  const bool grew = data_ != nullptr;
  release();
  data_ = static_cast<float*>(
      ::operator new(bytes, std::align_val_t{kSlotAlign}));
  capacity_ = bytes;
  return grew;
}

float* SlotSink::take(std::size_t numel) {
  const int alloc_index = allocs_seen_++;
  for (Slot& s : slots_) {
    if (s.used || s.numel != numel) continue;
    if (s.in_place && alloc_index != 0) continue;
    s.used = true;
    ++taken_;
    if (!s.in_place) std::memset(s.ptr, 0, numel * sizeof(float));
    return s.ptr;
  }
  return nullptr;
}

}  // namespace ramiel::mem
