// Liveness analysis over the scheduled per-worker streams.
//
// Walks one (worker, sample) stream in its scheduled program order (the
// cluster's topological order, the same order ParallelExecutor replays) and
// computes a first-def/last-use interval for every value the stream's
// kernels will allocate. Alias-producing ops (Identity, Reshape, Flatten,
// Squeeze, Unsqueeze — their kernels return a reshaped view of the input
// buffer, not a fresh tensor) are folded into their input's interval: the
// alias class shares one storage slot whose lifetime covers every member's
// uses. Values with a consumer on another worker are kept live until the
// run joins (mem::kStepForever) because the receiver reads the sender's
// buffer through the mailbox at an arbitrary later point.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "mem/plan.h"
#include "passes/hypercluster.h"

namespace ramiel::mem {

/// Lifetime of one alias class within a stream.
struct ValueInterval {
  ValueId value = -1;       // class root: the value the kernel allocates
  std::int64_t numel = 0;   // element count of the allocation
  std::int64_t bytes = 0;   // payload bytes (numel * dtype element size)
  DType dtype = DType::kF32;  // storage dtype (set by the quantize pass)
  int def_step = 0;
  int last_step = 0;        // kStepForever when sent cross-worker
  bool heap = false;        // excluded from the arena (escapes the run)
};

/// Liveness result for one (worker, sample) stream.
struct StreamLiveness {
  std::vector<NodeId> stream;            // program order of the stream
  std::vector<ValueInterval> intervals;  // ordered by def_step
  /// Member value -> alias-class root, for every value whose storage the
  /// stream allocates (roots map to themselves).
  std::unordered_map<ValueId, ValueId> root_of;
  /// root -> index into `intervals`.
  std::unordered_map<ValueId, int> interval_of;
};

/// True for ops whose kernel returns a view sharing the input's buffer.
bool op_is_alias(OpKind kind);

/// True for unary elementwise map ops that may safely write their output
/// over their (dying) input: every element is read exactly once, at the
/// index it is written.
bool op_inplace_unary(OpKind kind);

/// True for binary elementwise ops that may write in place over a dying
/// input *of the same shape as the output* (the non-broadcast operand).
bool op_inplace_binary(OpKind kind);

/// Computes liveness for the (worker, sample) stream of `hc`.
StreamLiveness analyze_stream(const Graph& graph, const Hyperclustering& hc,
                              int worker, int sample);

}  // namespace ramiel::mem
