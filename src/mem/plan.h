// Static memory plan for cluster execution.
//
// After CP+DCE and clustering the dataflow graph is fully static: every
// intermediate tensor's shape, producer and consumers are known at compile
// time, and each (worker, sample) stream executes in one fixed program
// order. That makes ahead-of-time buffer planning possible — the same move
// ONNX-MLIR makes when lowering to pre-planned buffers — so the serving hot
// path stops paying a heap allocation per intermediate tensor per request.
//
// The plan assigns every locally produced value of a stream a byte range
// [offset, offset + bytes) inside its worker's persistent arena, such that
// ranges of values with overlapping lifetimes never intersect. Workers with
// batch > 1 interleave their per-sample streams nondeterministically (a
// stream advances whenever its inputs are ready), so samples get disjoint
// arena regions: only lifetimes *within* one stream are ordered by program
// order and may share storage.
//
// Values excluded from the plan (they keep refcounted heap storage):
//   - graph outputs, and anything aliasing one — results escape the run;
//   - constants and graph inputs — not produced by kernels;
//   - zero-sized values.
// Values sent to another worker stay planned but their lifetime extends to
// the end of the run (kStepForever): the receiver shares the sender's slot
// through the mailbox and may read it at any point before the run joins.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace ramiel::mem {

/// Arena slot alignment in bytes (one cache line).
inline constexpr std::int64_t kSlotAlign = 64;

/// last_step value for slots that must survive until the run joins
/// (cross-worker sends: the receiving cluster reads the slot through the
/// mailbox at an unknowable point in its own stream).
inline constexpr int kStepForever = std::numeric_limits<int>::max();

/// `bytes` rounded up to the slot alignment.
inline std::int64_t aligned_size(std::int64_t bytes) {
  return (bytes + kSlotAlign - 1) / kSlotAlign * kSlotAlign;
}

/// One planned storage slot within a stream's arena region.
struct ValueSlot {
  ValueId value = -1;        // alias-class root (the kernel-allocated value)
  std::int64_t offset = 0;   // bytes from the stream region base (aligned)
  std::int64_t bytes = 0;    // aligned capacity of the slot
  std::int64_t numel = 0;    // exact element count (what the kernel asks for)
  DType dtype = DType::kF32; // storage dtype (slot matching is numel+dtype)
  int def_step = 0;          // stream step producing the value
  int last_step = 0;         // last step reading it; kStepForever when sent
  bool in_place = false;     // inherited the slot of an input dying at def
  ValueId in_place_src = -1; // the value whose slot it inherited
};

/// Slot table for one (worker, sample) stream.
struct StreamPlan {
  std::vector<ValueSlot> slots;              // ordered by def_step
  std::unordered_map<ValueId, int> slot_of;  // root value -> index into slots
  std::int64_t peak_bytes = 0;   // region capacity (high-water of the packer)
  std::int64_t naive_bytes = 0;  // sum of aligned sizes = fresh-alloc cost
  int in_place_count = 0;
};

/// All streams of one worker plus their region layout inside its arena.
struct WorkerPlan {
  std::vector<StreamPlan> streams;        // one per batch sample
  std::vector<std::int64_t> stream_base;  // region base offset per sample
  std::int64_t arena_bytes = 0;           // total arena capacity (sum of peaks)
  std::int64_t naive_bytes = 0;
  int in_place_count = 0;
};

/// The complete compile-time memory plan for a hyperclustered model.
struct MemPlan {
  std::vector<WorkerPlan> workers;
  std::int64_t peak_bytes = 0;   // sum of per-worker arena capacities
  std::int64_t naive_bytes = 0;  // what per-run fresh allocation would cost
  int in_place_count = 0;

  bool empty() const { return workers.empty(); }

  /// Fraction of naive bytes the plan avoids holding live at once
  /// (0 when nothing was planned).
  double reuse_ratio() const {
    return naive_bytes <= 0
               ? 0.0
               : 1.0 - static_cast<double>(peak_bytes) /
                           static_cast<double>(naive_bytes);
  }
};

}  // namespace ramiel::mem
