#include "mem/liveness.h"

#include <algorithm>

#include "support/check.h"

namespace ramiel::mem {
namespace {

bool is_graph_output(const Graph& g, ValueId v) {
  return std::find(g.outputs().begin(), g.outputs().end(), v) !=
         g.outputs().end();
}

/// True when some live consumer of `v` runs on a different worker for this
/// sample (the value will be shipped through a mailbox).
bool has_remote_consumer(const Graph& g, const Hyperclustering& hc, ValueId v,
                         int worker, int sample) {
  for (NodeId c : g.value(v).consumers) {
    if (g.node(c).dead) continue;
    const int wc = hc.worker(c, sample);
    if (wc >= 0 && wc != worker) return true;
  }
  return false;
}

}  // namespace

bool op_is_alias(OpKind kind) {
  switch (kind) {
    case OpKind::kIdentity:
    case OpKind::kReshape:
    case OpKind::kFlatten:
    case OpKind::kSqueeze:
    case OpKind::kUnsqueeze:
      return true;
    default:
      return false;
  }
}

bool op_inplace_unary(OpKind kind) {
  switch (kind) {
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kSilu:
    case OpKind::kTanh:
    case OpKind::kGelu:
    case OpKind::kErf:
    case OpKind::kSqrt:
    case OpKind::kExp:
    case OpKind::kNeg:
      return true;
    default:
      return false;
  }
}

bool op_inplace_binary(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kPow:
      return true;
    default:
      return false;
  }
}

StreamLiveness analyze_stream(const Graph& g, const Hyperclustering& hc,
                              int worker, int sample) {
  StreamLiveness lv;
  const auto& tasks = hc.workers[static_cast<std::size_t>(worker)];
  for (const HyperTask& t : tasks) {
    if (t.sample == sample) lv.stream.push_back(t.node);
  }

  auto extend = [&](ValueInterval& iv, int step) {
    if (iv.last_step != kStepForever) {
      iv.last_step = std::max(iv.last_step, step);
    }
  };

  for (int step = 0; step < static_cast<int>(lv.stream.size()); ++step) {
    const Node& n = g.node(lv.stream[static_cast<std::size_t>(step)]);
    if (n.kind == OpKind::kConstant) continue;

    // Uses: a read of any alias-class member keeps the root's slot live.
    for (ValueId v : n.inputs) {
      auto it = lv.root_of.find(v);
      if (it == lv.root_of.end()) continue;  // remote / constant / graph input
      extend(lv.intervals[static_cast<std::size_t>(lv.interval_of[it->second])],
             step);
    }

    const bool alias = op_is_alias(n.kind) && !n.inputs.empty();
    for (ValueId ov : n.outputs) {
      const Value& val = g.value(ov);
      if (val.is_constant()) continue;  // folded away; carries its own data

      if (alias) {
        // The kernel returns a view of input 0: no allocation happens. When
        // that input's storage is stream-local, the output joins its alias
        // class; when it is remote/constant/graph-input storage, the view
        // shares memory the stream does not manage — nothing to plan.
        auto it = lv.root_of.find(n.inputs[0]);
        if (it == lv.root_of.end()) continue;
        const ValueId root = it->second;
        lv.root_of[ov] = root;
        ValueInterval& iv =
            lv.intervals[static_cast<std::size_t>(lv.interval_of[root])];
        extend(iv, step);
        if (is_graph_output(g, ov)) iv.heap = true;
        if (has_remote_consumer(g, hc, ov, worker, sample)) {
          iv.last_step = kStepForever;
        }
        continue;
      }

      ValueInterval iv;
      iv.value = ov;
      iv.numel = val.shape.numel();
      iv.dtype = val.dtype;
      iv.bytes = iv.numel * static_cast<std::int64_t>(dtype_size(val.dtype));
      iv.def_step = step;
      iv.last_step = step;
      iv.heap = is_graph_output(g, ov) || iv.bytes <= 0;
      if (has_remote_consumer(g, hc, ov, worker, sample)) {
        iv.last_step = kStepForever;
      }
      lv.root_of[ov] = ov;
      lv.interval_of[ov] = static_cast<int>(lv.intervals.size());
      lv.intervals.push_back(iv);
    }
  }

  // Multi-output guard: the runtime's slot sink matches allocations by
  // element count and dtype, so two outputs of one node with equal numel
  // and storage could swap slots if a kernel allocated them out of order.
  // Unify their lifetimes so a swap cannot shorten either slot's validity.
  for (std::size_t i = 0; i < lv.intervals.size(); ++i) {
    for (std::size_t j = i + 1; j < lv.intervals.size(); ++j) {
      ValueInterval& a = lv.intervals[i];
      ValueInterval& b = lv.intervals[j];
      if (a.def_step != b.def_step) break;  // intervals are def-ordered
      if (a.numel != b.numel || a.dtype != b.dtype) continue;
      const int last = std::max(a.last_step, b.last_step);
      a.last_step = last;
      b.last_step = last;
    }
  }

  return lv;
}

}  // namespace ramiel::mem
