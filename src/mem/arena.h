// Arena runtime for the static memory plan.
//
// MemArena is one worker's persistent scratch block, owned by the
// ParallelExecutor across run() calls and sized to the worker's planned
// peak. SlotSink is the per-node AllocSink the executor installs around a
// kernel call: it is primed with the arena addresses of the node's planned
// outputs and hands them to Tensor(Shape) by element count, so kernels
// write straight into their planned slots without knowing the planner
// exists. Allocations the sink cannot match (dynamic temporaries, shape
// mismatches) silently fall through to the heap — the plan is an
// optimization, never a correctness requirement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ramiel::mem {

/// A 64-byte-aligned scratch block that persists across runs and grows
/// monotonically on demand.
class MemArena {
 public:
  MemArena() = default;
  ~MemArena();

  MemArena(MemArena&& o) noexcept;
  MemArena& operator=(MemArena&& o) noexcept;
  MemArena(const MemArena&) = delete;
  MemArena& operator=(const MemArena&) = delete;

  /// Grows the block to at least `bytes`. Returns true when an existing
  /// nonempty block had to be reallocated (a "grow" event — planned sizes
  /// should make this rare). Must only be called while no tensor points
  /// into the arena (the executor calls it between runs, workers parked).
  bool ensure(std::size_t bytes);

  float* data() { return data_; }
  std::size_t capacity_bytes() const { return capacity_; }

  /// Grows the kernel-scratch block (separate from the planned-slot block:
  /// scratch never backs a Tensor and its lifetime is one kernel call) to
  /// at least `bytes`. Only safe while no scratch is outstanding — SlotSink
  /// guarantees that by only growing at bump offset zero.
  bool ensure_scratch(std::size_t bytes);

  float* scratch_data() { return scratch_; }
  std::size_t scratch_capacity_bytes() const { return scratch_capacity_; }

 private:
  void release();

  float* data_ = nullptr;
  std::size_t capacity_ = 0;
  float* scratch_ = nullptr;
  std::size_t scratch_capacity_ = 0;
};

/// AllocSink primed with one node's planned output slots. Matching is by
/// exact element count and dtype; each slot satisfies at most one
/// allocation. Slots
/// not marked in-place are zero-filled on take (the heap path hands out
/// zero-initialized vectors, and matmul/conv accumulate into their output),
/// while in-place slots still hold the dying input the kernel is about to
/// read — they additionally only match the *first* allocation of the node,
/// since a temporary stealing a live input's bytes would corrupt it.
class SlotSink final : public AllocSink {
 public:
  void clear() {
    slots_.clear();
    taken_ = 0;
    allocs_seen_ = 0;
    scratch_off_ = 0;
  }

  void add(float* ptr, std::size_t numel, DType dtype, bool in_place) {
    slots_.push_back(Slot{ptr, numel, dtype, in_place, false});
  }

  bool empty() const { return slots_.empty(); }

  /// Number of allocations served from the arena since the last clear().
  int taken() const { return taken_; }

  float* take(std::size_t numel, DType dtype) override;

  /// Binds the arena whose scratch block serves take_scratch(). Unbound
  /// (the default), every scratch request declines to the heap.
  void set_scratch_arena(MemArena* arena) { scratch_arena_ = arena; }

  /// Bump-allocates kernel scratch from the arena's scratch block. The
  /// block may only grow while empty (offset zero) — a grow with scratch
  /// outstanding would dangle earlier pointers — so nested requests that
  /// do not fit decline to the heap instead.
  float* take_scratch(std::size_t numel) override;
  void release_scratch(float* ptr, std::size_t numel) override;

 private:
  struct Slot {
    float* ptr;
    std::size_t numel;
    DType dtype;
    bool in_place;
    bool used;
  };
  std::vector<Slot> slots_;
  int taken_ = 0;
  int allocs_seen_ = 0;
  MemArena* scratch_arena_ = nullptr;
  std::size_t scratch_off_ = 0;  // floats
};

/// Installs a sink on the current thread for the lifetime of the scope,
/// restoring the previous sink (if any) on exit.
class ScopedAllocSink {
 public:
  explicit ScopedAllocSink(AllocSink* sink)
      : prev_(set_thread_alloc_sink(sink)) {}
  ~ScopedAllocSink() { set_thread_alloc_sink(prev_); }

  ScopedAllocSink(const ScopedAllocSink&) = delete;
  ScopedAllocSink& operator=(const ScopedAllocSink&) = delete;

 private:
  AllocSink* prev_;
};

}  // namespace ramiel::mem
