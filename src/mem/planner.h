// Offset planner: packs liveness intervals into per-stream arena regions.
//
// Each (worker, sample) stream is planned independently with a best-fit
// free-list allocator over byte offsets: intervals are visited in def order,
// expired slots return their ranges to a coalescing hole list, and each new
// interval takes the smallest hole that fits (extending the high-water mark
// when none does). Offsets and sizes are rounded to kSlotAlign.
//
// In-place reuse: when a node is a unary map or a same-shape binary
// elementwise op and one of its inputs dies exactly at the node's step with
// the same element count as the output, the output inherits the input's
// slot instead of opening a new range. The kernels for these ops read each
// element at the index they write it, so overwriting the dying input is
// safe; the runtime skips zero-filling such slots.
#pragma once

#include "graph/graph.h"
#include "mem/plan.h"
#include "passes/hypercluster.h"

namespace ramiel::mem {

/// Plans the arena region of one (worker, sample) stream.
StreamPlan plan_stream(const Graph& graph, const Hyperclustering& hc,
                       int worker, int sample);

/// Plans every stream of every worker; per-sample regions are laid out
/// back-to-back inside each worker's arena (samples interleave
/// nondeterministically at runtime, so they never share ranges).
MemPlan plan_memory(const Graph& graph, const Hyperclustering& hc);

}  // namespace ramiel::mem
