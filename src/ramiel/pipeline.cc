#include "ramiel/pipeline.h"

#include "graph/shape_inference.h"
#include "support/stopwatch.h"

namespace ramiel {

CompiledModel compile_model(Graph graph, const PipelineOptions& options) {
  Stopwatch sw;
  CompiledModel out;

  if (options.constant_folding) {
    out.fold_stats = constant_propagation_dce(graph);
    graph = graph.compacted();
  }
  if (options.fuse_batch_norms) {
    out.batch_norms_folded = fold_batch_norms(graph);
  }
  if (options.cloning) {
    out.clone_stats = clone_tasks(graph, options.cost, options.cloning_options);
  }
  infer_shapes(graph);
  graph.validate();

  out.analysis = analyze_parallelism(graph, options.cost);

  Clustering lc = linear_clustering(graph, options.cost);
  out.clusters_before_merge = lc.size();
  out.clustering = merge_clusters(graph, options.cost, lc);

  out.hyperclusters =
      options.hyper_mode == HyperMode::kSwitched
          ? build_switched_hyperclusters(graph, out.clustering, options.batch)
          : build_hyperclusters(graph, out.clustering, options.batch);

  if (options.generate_code) {
    CodegenOptions cg;
    cg.model_name = graph.name();
    cg.weights_path = graph.name() + ".rmb";
    out.code = generate_python(graph, out.clustering, cg);
    if (options.batch > 1) {
      out.code.hypercluster_source =
          generate_python_hyper(graph, out.hyperclusters, cg);
    }
  }
  out.graph = std::move(graph);
  out.compile_seconds = sw.seconds();
  return out;
}

}  // namespace ramiel
