#include "ramiel/pipeline.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "graph/shape_inference.h"
#include "mem/planner.h"
#include "passes/patterns/registry.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

/// Producer->consumer tensor edges among live nodes (what the clustering
/// passes cut or internalize; reported before/after every pass).
int count_live_edges(const Graph& g) {
  int edges = 0;
  for (const Node& n : g.nodes()) {
    if (n.dead) continue;
    for (ValueId v : n.inputs) {
      const Value& val = g.value(v);
      if (val.producer != kNoNode && !g.node(val.producer).dead) ++edges;
    }
  }
  return edges;
}

/// Wraps one pipeline stage with before/after measurement. The critical
/// path is recomputed after every stage (a single O(V+E) distance pass —
/// negligible next to LC/merging) so the report shows how each pass moved
/// the quantity the whole compiler optimizes.
class PassTimer {
 public:
  PassTimer(std::string name, const Graph& graph, const CostModel& cost,
            std::vector<PassReport>& out)
      : graph_(graph), cost_(cost), out_(out) {
    report_.pass = std::move(name);
    report_.start_ns = Stopwatch::now_ns();
    report_.nodes_before = graph.live_node_count();
    report_.edges_before = count_live_edges(graph);
  }

  /// Finishes the measurement. `clusters` >= 0 marks a clustering stage.
  void done(int clusters = -1) {
    report_.end_ns = Stopwatch::now_ns();
    report_.wall_ms =
        static_cast<double>(report_.end_ns - report_.start_ns) / 1e6;
    report_.nodes_after = graph_.live_node_count();
    report_.edges_after = count_live_edges(graph_);
    report_.critical_path = analyze_parallelism(graph_, cost_).critical_path;
    report_.clusters = clusters;
    out_.push_back(report_);
  }

 private:
  const Graph& graph_;
  const CostModel& cost_;
  std::vector<PassReport>& out_;
  PassReport report_;
};

struct CompileMetrics {
  obs::Counter* compiles = obs::registry().counter(
      "ramiel_compile_total", "compile_model() invocations");
  obs::Histogram* compile_ms = obs::registry().histogram(
      "ramiel_compile_wall_ms", "End-to-end compile wall time (ms)");
};

CompileMetrics& compile_metrics() {
  static CompileMetrics* m = new CompileMetrics();
  return *m;
}

/// Coefficient of variation of per-cluster summed node weight.
double cluster_cost_cv(const Graph& g, const Clustering& clustering,
                       const CostModel& cost) {
  const std::size_t k = clustering.clusters.size();
  if (k < 2) return 0.0;
  std::vector<double> costs(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    for (NodeId id : clustering.clusters[c].nodes) {
      costs[c] += static_cast<double>(cost.node_weight(g.node(id)));
    }
  }
  double mean = 0.0;
  for (double c : costs) mean += c;
  mean /= static_cast<double>(k);
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (double c : costs) var += (c - mean) * (c - mean);
  var /= static_cast<double>(k);
  return std::sqrt(var) / mean;
}

}  // namespace

CompiledModel compile_model(Graph graph, const PipelineOptions& options) {
  Stopwatch sw;
  CompiledModel out;
  const CostModel& cost = options.cost;

  if (options.constant_folding) {
    PassTimer t("constant_folding", graph, cost, out.pass_reports);
    out.fold_stats = constant_propagation_dce(graph);
    graph = graph.compacted();
    t.done();
  }
  // Pattern-rewrite stage. The legacy fuse_batch_norms / fuse_activations
  // switches select just their pattern; pattern_rewrites enables the whole
  // registry (default-enabled rules minus overrides), with the legacy
  // switches force-enabling their rules on top.
  const bool run_pattern_stage = options.pattern_rewrites ||
                                 options.fuse_batch_norms ||
                                 options.fuse_activations;
  if (run_pattern_stage) {
    patterns::PatternRunOptions popt;
    popt.max_rounds = options.pattern_max_rounds;
    if (!options.pattern_rewrites) {
      for (const std::string& n : patterns::pattern_registry().names()) {
        popt.enable[n] = false;
      }
    }
    for (const auto& [name, on] : options.pattern_overrides) {
      popt.enable[name] = on;
    }
    if (options.fuse_batch_norms) popt.enable["fold-batch-norms"] = true;
    if (options.fuse_activations) popt.enable["fuse-activations"] = true;
    PassTimer t("pattern_rewrite", graph, cost, out.pass_reports);
    out.pattern_stats = patterns::run_patterns(graph, popt);
    out.batch_norms_folded = out.pattern_stats.count("fold-batch-norms");
    out.activations_fused = out.pattern_stats.count("fuse-activations");
    t.done();
  }
  if (options.cloning) {
    PassTimer t("cloning", graph, cost, out.pass_reports);
    out.clone_stats = clone_tasks(graph, cost, options.cloning_options);
    t.done();
  }
  if (options.dtype != DType::kF32) {
    PassTimer t("quantize_weights", graph, cost, out.pass_reports);
    out.quant_stats = quantize_weights(graph, options.dtype,
                                       options.calibration);
    t.done();
  }
  {
    PassTimer t("shape_inference", graph, cost, out.pass_reports);
    infer_shapes(graph);
    graph.validate();
    t.done();
  }

  out.analysis = analyze_parallelism(graph, cost);

  Clustering lc;
  {
    PassTimer t("linear_clustering", graph, cost, out.pass_reports);
    lc = linear_clustering(graph, cost);
    out.clusters_before_merge = lc.size();
    t.done(lc.size());
  }
  {
    PassTimer t("cluster_merging", graph, cost, out.pass_reports);
    out.clustering = merge_clusters(graph, cost, lc);
    t.done(out.clustering.size());
  }
  out.cluster_cost_cv = cluster_cost_cv(graph, out.clustering, cost);
  {
    PassTimer t("hyperclustering", graph, cost, out.pass_reports);
    out.hyperclusters =
        options.hyper_mode == HyperMode::kSwitched
            ? build_switched_hyperclusters(graph, out.clustering,
                                           options.batch)
            : build_hyperclusters(graph, out.clustering, options.batch);
    t.done(static_cast<int>(out.hyperclusters.workers.size()));
  }
  if (options.mem_planning) {
    PassTimer t("mem_planning", graph, cost, out.pass_reports);
    out.mem_plan = mem::plan_memory(graph, out.hyperclusters);
    t.done(static_cast<int>(out.mem_plan.workers.size()));
  }

  if (options.generate_code) {
    PassTimer t("codegen", graph, cost, out.pass_reports);
    CodegenOptions cg;
    cg.model_name = graph.name();
    cg.weights_path = graph.name() + ".rmb";
    out.code = generate_python(graph, out.clustering, cg);
    if (options.batch > 1) {
      out.code.hypercluster_source =
          generate_python_hyper(graph, out.hyperclusters, cg);
    }
    t.done();
  }
  out.graph = std::move(graph);
  out.compile_seconds = sw.seconds();

  compile_metrics().compiles->inc();
  compile_metrics().compile_ms->observe(out.compile_seconds * 1e3);
  return out;
}

std::unordered_map<std::string, float> load_calibration(
    const std::string& path) {
  std::ifstream is(path);
  RAMIEL_CHECK(is.good(),
               str_cat("cannot read calibration file '", path, "'"));
  std::unordered_map<std::string, float> out;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t tab = line.rfind('\t');
    if (tab == std::string::npos || tab == 0) continue;
    char* end = nullptr;
    const float v = std::strtof(line.c_str() + tab + 1, &end);
    if (end == line.c_str() + tab + 1) continue;
    out[line.substr(0, tab)] = v;
  }
  return out;
}

std::string compile_report_json(const CompiledModel& cm) {
  using obs::json_number;
  using obs::json_quote;
  std::string out = "{";
  out += "\"model\":" + json_quote(cm.graph.name());
  out += ",\"compile_seconds\":" + json_number(cm.compile_seconds);
  out += ",\"nodes\":" + std::to_string(cm.analysis.num_nodes);
  out += ",\"total_weight\":" +
         std::to_string(cm.analysis.total_weight);
  out += ",\"critical_path\":" + std::to_string(cm.analysis.critical_path);
  out += ",\"parallelism\":" + json_number(cm.analysis.parallelism);
  out += ",\"clusters_before_merge\":" +
         std::to_string(cm.clusters_before_merge);
  out += ",\"clusters\":" + std::to_string(cm.clustering.size());
  out += ",\"cluster_cost_cv\":" + json_number(cm.cluster_cost_cv);
  out += ",\"batch\":" + std::to_string(cm.hyperclusters.batch);
  out += ",\"folded_nodes\":" + std::to_string(cm.fold_stats.folded_nodes);
  out += ",\"dce_removed\":" + std::to_string(cm.fold_stats.dce_removed);
  out += ",\"clones_created\":" +
         std::to_string(cm.clone_stats.clones_created);
  out += ",\"batch_norms_folded\":" + std::to_string(cm.batch_norms_folded);
  out += ",\"activations_fused\":" + std::to_string(cm.activations_fused);
  // Per-pattern applied counts from the pattern-rewrite stage (registry
  // order; only patterns that were enabled appear). Empty "counts" when the
  // stage did not run.
  out += ",\"patterns\":{";
  out += "\"rounds\":" + std::to_string(cm.pattern_stats.rounds);
  out += ",\"total_applied\":" +
         std::to_string(cm.pattern_stats.total_applied);
  out += ",\"counts\":{";
  for (std::size_t i = 0; i < cm.pattern_stats.applied.size(); ++i) {
    if (i > 0) out += ",";
    out += json_quote(cm.pattern_stats.applied[i].first) + ":" +
           std::to_string(cm.pattern_stats.applied[i].second);
  }
  out += "}}";
  out += ",\"quantize\":{";
  out += "\"weights_quantized\":" +
         std::to_string(cm.quant_stats.weights_quantized);
  out += ",\"values_demoted\":" + std::to_string(cm.quant_stats.values_demoted);
  out += ",\"nodes_calibrated\":" +
         std::to_string(cm.quant_stats.nodes_calibrated);
  out += ",\"weight_bytes_before\":" +
         std::to_string(cm.quant_stats.weight_bytes_before);
  out += ",\"weight_bytes_after\":" +
         std::to_string(cm.quant_stats.weight_bytes_after);
  out += "}";
  out += ",\"memory\":{";
  out += "\"planned\":" + std::string(cm.mem_plan.empty() ? "false" : "true");
  out += ",\"peak_bytes\":" + std::to_string(cm.mem_plan.peak_bytes);
  out += ",\"naive_bytes\":" + std::to_string(cm.mem_plan.naive_bytes);
  out += ",\"reuse_ratio\":" + json_number(cm.mem_plan.reuse_ratio());
  out += ",\"in_place\":" + std::to_string(cm.mem_plan.in_place_count);
  out += ",\"clusters\":[";
  for (std::size_t w = 0; w < cm.mem_plan.workers.size(); ++w) {
    const mem::WorkerPlan& wp = cm.mem_plan.workers[w];
    if (w > 0) out += ",";
    out += "\n{\"worker\":" + std::to_string(w);
    out += ",\"peak_bytes\":" + std::to_string(wp.arena_bytes);
    out += ",\"naive_bytes\":" + std::to_string(wp.naive_bytes);
    const double ratio =
        wp.naive_bytes <= 0
            ? 0.0
            : 1.0 - static_cast<double>(wp.arena_bytes) /
                        static_cast<double>(wp.naive_bytes);
    out += ",\"reuse_ratio\":" + json_number(ratio);
    out += ",\"in_place\":" + std::to_string(wp.in_place_count);
    out += "}";
  }
  out += "]}";
  out += ",\"passes\":[";
  bool first = true;
  for (const PassReport& p : cm.pass_reports) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"pass\":" + json_quote(p.pass);
    out += ",\"wall_ms\":" + json_number(p.wall_ms);
    out += ",\"nodes_before\":" + std::to_string(p.nodes_before);
    out += ",\"nodes_after\":" + std::to_string(p.nodes_after);
    out += ",\"edges_before\":" + std::to_string(p.edges_before);
    out += ",\"edges_after\":" + std::to_string(p.edges_after);
    out += ",\"critical_path\":" + std::to_string(p.critical_path);
    out += ",\"clusters\":" + std::to_string(p.clusters);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

void add_compile_trace(const CompiledModel& cm, obs::Timeline& timeline) {
  timeline.process_name(obs::kCompilerPid, "compiler");
  timeline.thread_name(obs::kCompilerPid, 0, cm.graph.name());
  for (const PassReport& p : cm.pass_reports) {
    std::vector<obs::Timeline::Arg> args = {
        {"nodes_before", p.nodes_before},
        {"nodes_after", p.nodes_after},
        {"edges_before", p.edges_before},
        {"edges_after", p.edges_after},
        {"critical_path", static_cast<double>(p.critical_path)},
    };
    if (p.clusters >= 0) args.emplace_back("clusters", p.clusters);
    timeline.span(p.pass, "compile", obs::kCompilerPid, 0, p.start_ns,
                  p.end_ns, std::move(args));
  }
}

}  // namespace ramiel
