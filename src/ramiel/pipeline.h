// The Ramiel end-to-end pipeline (paper Fig. 10):
//
//   ONNX model -> [constant propagation + DCE] -> Model2Graph ->
//   [Cloning] -> Clustering (LC + merging) -> [Hyperclustering, batch > 1]
//   -> Parallel code generation
//
// compile_model() runs the whole thing and measures its wall time — the
// "CT(s)" compile-time column of Table VIII.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/python_codegen.h"
#include "graph/cost_model.h"
#include "mem/plan.h"
#include "passes/analysis.h"
#include "passes/cloning.h"
#include "passes/cluster_merging.h"
#include "passes/constant_folding.h"
#include "passes/fusion.h"
#include "passes/hypercluster.h"
#include "passes/linear_clustering.h"
#include "passes/patterns/driver.h"
#include "passes/quantize.h"
#include "support/dtype.h"

namespace ramiel::obs {
class Timeline;
}  // namespace ramiel::obs

namespace ramiel {

/// Which hypercluster interleave to build when batch > 1.
enum class HyperMode { kPlain, kSwitched };

struct PipelineOptions {
  /// Run constant propagation + dead-code elimination first (§III-C).
  bool constant_folding = false;
  /// Run restricted task cloning before clustering (§III-D).
  bool cloning = false;
  /// Fold Conv+BatchNorm pairs (extension: the conclusion's "more powerful
  /// graph reductions"). Legacy switch: equivalent to enabling only the
  /// "fold-batch-norms" pattern (or force-enabling it when pattern_rewrites
  /// is set).
  bool fuse_batch_norms = false;
  /// Fold Relu/Sigmoid into the preceding Conv2d/Gemm kernel epilogue so the
  /// activation runs during the GEMM write-back instead of as its own task.
  /// Legacy switch for the "fuse-activations" pattern, like fuse_batch_norms.
  bool fuse_activations = false;
  /// Run the declarative pattern-rewrite stage (src/passes/patterns/): every
  /// registered rule, applied to a fixed point with driver-enforced guards.
  bool pattern_rewrites = false;
  /// Per-pattern enable overrides by name (true = force on, false = off);
  /// consulted only when the stage runs. Unknown names raise Error.
  std::unordered_map<std::string, bool> pattern_overrides;
  /// Fixed-point bound for the pattern driver.
  int pattern_max_rounds = 8;
  CloningOptions cloning_options;
  /// Storage dtype the model is lowered to (kF32 = no lowering): weights
  /// rewritten by the quantize_weights pass, eligible activations demoted,
  /// the memory plan sized in actual element bytes. Compute stays fp32.
  DType dtype = DType::kF32;
  /// Calibrated per-value absmax ranges (value name -> absmax) recorded by
  /// `ramiel calibrate`; consulted by the i8 lowering to stamp static
  /// activation scales on quantized Conv/Gemm/MatMul nodes.
  std::unordered_map<std::string, float> calibration;
  /// Inference batch size; > 1 triggers hyperclustering (§III-E).
  int batch = 1;
  HyperMode hyper_mode = HyperMode::kPlain;
  CostModel cost;
  /// Generate the parallel + sequential Python sources (Algorithm 4).
  bool generate_code = true;
  /// Compute the static memory plan for the hyperclustered streams
  /// (src/mem/). The plan is advisory: executors constructed without it run
  /// fully on the heap.
  bool mem_planning = true;
};

/// What one compiler stage did to the graph — the per-pass compile report
/// (the ONNX-MLIR-style honesty ledger; `ramiel compile --report` dumps the
/// full list as JSON). Timestamps are Stopwatch::now_ns() values, the same
/// clock the runtime tracer uses, so pass spans and task spans share one
/// timeline.
struct PassReport {
  std::string pass;              // "constant_folding", "linear_clustering", ...
  double wall_ms = 0.0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  int nodes_before = 0;          // live nodes entering the pass
  int nodes_after = 0;
  int edges_before = 0;          // producer->consumer tensor edges
  int edges_after = 0;
  /// Weighted critical-path length after the pass (the quantity LC zeroes
  /// out cluster by cluster); -1 when not measured.
  std::int64_t critical_path = -1;
  /// Cluster count produced by a clustering stage; -1 elsewhere.
  int clusters = -1;
};

/// Everything the pipeline produces for one model.
struct CompiledModel {
  Graph graph;  // transformed graph (folded/cloned/compacted)
  ParallelismReport analysis;       // Table I row
  int clusters_before_merge = 0;    // Table II "Before"
  Clustering clustering;            // merged clusters (Table II "After")
  Hyperclustering hyperclusters;    // batch-aware task lists
  mem::MemPlan mem_plan;            // static arena plan (empty if disabled)
  CodegenResult code;
  FoldStats fold_stats;
  CloningStats clone_stats;
  int batch_norms_folded = 0;
  int activations_fused = 0;
  /// Per-pattern applied counts + rounds from the pattern-rewrite stage
  /// (empty when the stage did not run). Also surfaced in the compile
  /// report's "patterns" block.
  patterns::PatternRunStats pattern_stats;
  /// Low-precision lowering counters (all zero when options.dtype == kF32).
  QuantizeStats quant_stats;
  /// Coefficient of variation (stddev/mean) of per-cluster summed node
  /// weight — the skew measure `--executor auto` compares against
  /// RAMIEL_AUTO_STEAL_CV to decide between the static and work-stealing
  /// runtimes. 0 for perfectly balanced clusters (or fewer than two).
  double cluster_cost_cv = 0.0;
  double compile_seconds = 0.0;     // Table VIII "CT(s)"
  std::vector<PassReport> pass_reports;  // one entry per stage that ran
};

/// Runs the pipeline on `graph` (consumed).
CompiledModel compile_model(Graph graph, const PipelineOptions& options = {});

/// Parses a calibration file written by ramiel_calibrate — one
/// "name<TAB>absmax" line per value — into PipelineOptions::calibration.
/// Throws Error when the file cannot be read; malformed lines are skipped.
std::unordered_map<std::string, float> load_calibration(
    const std::string& path);

/// Serializes the per-pass compile report as one JSON object
/// (`ramiel compile --report=FILE` writes exactly this).
std::string compile_report_json(const CompiledModel& cm);

/// Appends the compile passes as spans on the compiler track of a unified
/// trace timeline (obs::kCompilerPid), aligned with any runtime profile
/// recorded in the same process.
void add_compile_trace(const CompiledModel& cm, obs::Timeline& timeline);

}  // namespace ramiel
