// The Ramiel end-to-end pipeline (paper Fig. 10):
//
//   ONNX model -> [constant propagation + DCE] -> Model2Graph ->
//   [Cloning] -> Clustering (LC + merging) -> [Hyperclustering, batch > 1]
//   -> Parallel code generation
//
// compile_model() runs the whole thing and measures its wall time — the
// "CT(s)" compile-time column of Table VIII.
#pragma once

#include <string>

#include "codegen/python_codegen.h"
#include "graph/cost_model.h"
#include "passes/analysis.h"
#include "passes/cloning.h"
#include "passes/cluster_merging.h"
#include "passes/constant_folding.h"
#include "passes/fusion.h"
#include "passes/hypercluster.h"
#include "passes/linear_clustering.h"

namespace ramiel {

/// Which hypercluster interleave to build when batch > 1.
enum class HyperMode { kPlain, kSwitched };

struct PipelineOptions {
  /// Run constant propagation + dead-code elimination first (§III-C).
  bool constant_folding = false;
  /// Run restricted task cloning before clustering (§III-D).
  bool cloning = false;
  /// Fold Conv+BatchNorm pairs (extension: the conclusion's "more powerful
  /// graph reductions").
  bool fuse_batch_norms = false;
  CloningOptions cloning_options;
  /// Inference batch size; > 1 triggers hyperclustering (§III-E).
  int batch = 1;
  HyperMode hyper_mode = HyperMode::kPlain;
  CostModel cost;
  /// Generate the parallel + sequential Python sources (Algorithm 4).
  bool generate_code = true;
};

/// Everything the pipeline produces for one model.
struct CompiledModel {
  Graph graph;  // transformed graph (folded/cloned/compacted)
  ParallelismReport analysis;       // Table I row
  int clusters_before_merge = 0;    // Table II "Before"
  Clustering clustering;            // merged clusters (Table II "After")
  Hyperclustering hyperclusters;    // batch-aware task lists
  CodegenResult code;
  FoldStats fold_stats;
  CloningStats clone_stats;
  int batch_norms_folded = 0;
  double compile_seconds = 0.0;     // Table VIII "CT(s)"
};

/// Runs the pipeline on `graph` (consumed).
CompiledModel compile_model(Graph graph, const PipelineOptions& options = {});

}  // namespace ramiel
