// RetinaNet (Lin et al.): ResNet bottleneck backbone + FPN + per-level
// classification and box-regression subnets. The five FPN levels each carry
// their own unrolled head subnets, which is where the graph's task
// parallelism comes from (ten independent subnets hanging off the pyramid).
#include "models/net_builder.h"
#include "models/zoo.h"

namespace ramiel::models {
namespace {

/// ResNet bottleneck: 1x1 -> 3x3 -> 1x1 with residual (12-14 nodes).
ValueId bottleneck_block(NetBuilder& b, ValueId x, std::int64_t ch,
                         int stride, bool downsample) {
  ValueId identity = x;
  ValueId y = b.conv_bn_relu(x, ch, 1);
  y = b.conv_bn_relu(y, ch, 3, stride, 1);
  y = b.bn(b.conv(y, ch * 4, 1, 1, 0, 1, /*bias=*/false));
  if (downsample) {
    identity = b.bn(b.conv(x, ch * 4, 1, stride, 0, 1, /*bias=*/false));
  }
  return b.relu(b.add(y, identity));
}

/// One ResNet stage.
ValueId stage(NetBuilder& b, ValueId x, std::int64_t ch, int blocks,
              int stride) {
  x = bottleneck_block(b, x, ch, stride, /*downsample=*/true);
  for (int i = 1; i < blocks; ++i) {
    x = bottleneck_block(b, x, ch, 1, /*downsample=*/false);
  }
  return x;
}

/// Head subnet: 4 conv+relu pairs and a final prediction conv, then the
/// foldable reshape + transpose the ONNX export emits per level.
ValueId head_subnet(NetBuilder& b, ValueId x, std::int64_t ch,
                    std::int64_t out_ch, bool sigmoid_out) {
  ValueId y = x;
  for (int i = 0; i < 4; ++i) y = b.relu(b.conv(y, ch, 3, 1, 1));
  y = b.conv(y, out_ch, 3, 1, 1);
  y = b.foldable_reshape(y, {1, out_ch, -1});
  y = b.transpose(y, {0, 2, 1});
  if (sigmoid_out) y = b.sigmoid(y);
  return y;
}

}  // namespace

Graph retinanet() {
  NetBuilder b("retinanet");
  ValueId x = b.input("images", Shape{1, 3, 128, 128});

  // ResNet-50-style backbone (channels scaled down 8x).
  x = b.conv_bn_relu(x, 8, 7, /*stride=*/2, /*pad=*/3);
  x = b.max_pool(x, 3, 2, 1);
  ValueId c2 = stage(b, x, 8, 3, 1);     // 32 out
  ValueId c3 = stage(b, c2, 16, 4, 2);   // 64 out
  ValueId c4 = stage(b, c3, 32, 10, 2);  // 128 out
  ValueId c5 = stage(b, c4, 64, 5, 2);   // 256 out

  // FPN.
  const std::int64_t f = 40;  // pyramid width
  ValueId p5 = b.conv(c5, f, 1);
  ValueId p4 = b.add(b.upsample(p5, 2), b.conv(c4, f, 1));
  ValueId p3 = b.add(b.upsample(p4, 2), b.conv(c3, f, 1));
  p3 = b.conv(p3, f, 3, 1, 1);
  p4 = b.conv(p4, f, 3, 1, 1);
  p5 = b.conv(p5, f, 3, 1, 1);
  ValueId p6 = b.conv(c5, f, 3, 2, 1);
  ValueId p7 = b.conv(b.relu(p6), f, 3, 2, 1);

  // Class + box subnets on every pyramid level (unrolled, as exported).
  const std::int64_t na = 9, ncls = 10;
  std::vector<ValueId> cls_outs, box_outs;
  for (ValueId level : {p3, p4, p5, p6, p7}) {
    cls_outs.push_back(head_subnet(b, level, f, na * ncls, /*sigmoid=*/true));
    box_outs.push_back(head_subnet(b, level, f, na * 4, /*sigmoid=*/false));
  }
  ValueId cls = b.concat(cls_outs, 1);
  ValueId box = b.concat(box_outs, 1);
  return b.finish({cls, box});
}

}  // namespace ramiel::models
