// NASNet-A (Zoph et al.). A stack of searched "normal" and "reduction"
// cells; every cell runs five blocks in parallel, each block combining two
// of {adjusted prev output, adjusted prev-prev output} with separable
// convolutions or pooling. This is the paper's largest graph (Fig. 4) with
// the widest fan-out and the highest potential parallelism (3.7x), and —
// via the per-cell shape-computation chains and constant side-branches its
// ONNX export carries — the biggest constant-propagation win (Table III:
// 67 -> 9 clusters).
#include "models/net_builder.h"
#include "models/zoo.h"
#include "support/check.h"

namespace ramiel::models {
namespace {

/// Separable conv as NASNet defines it — applied twice, as in the paper's
/// architecture: (relu -> depthwise -> pointwise -> bn) x 2 (10 nodes).
ValueId sep_conv(NetBuilder& b, ValueId x, std::int64_t ch, int kernel,
                 int stride) {
  ValueId y = x;
  for (int rep = 0; rep < 2; ++rep) {
    y = b.relu(y);
    y = b.conv(y, b.channels(y), kernel, rep == 0 ? stride : 1, kernel / 2,
               static_cast<int>(b.channels(y)), /*bias=*/false);
    y = b.bn(b.conv(y, ch, 1, 1, 0, 1, /*bias=*/false));
  }
  return y;
}

struct CellState {
  ValueId value;
  int hw;  // spatial extent (square feature maps)
};

/// Aligns a cell input to (ch, hw) with a relu->1x1 conv->bn adjust path,
/// striding when the source is spatially larger.
ValueId adjust(NetBuilder& b, const CellState& s, std::int64_t ch, int hw) {
  const int stride = s.hw / hw;
  RAMIEL_CHECK(stride >= 1, "cell input smaller than target");
  return b.bn(b.conv(b.relu(s.value), ch, 1, stride, 0, 1, /*bias=*/false));
}

/// One NASNet-A cell (normal: stride 1, reduction: stride 2 on the first
/// ops of every block). Returns the concat of the five block outputs.
CellState cell(NetBuilder& b, const CellState& prev, const CellState& prev_prev,
               std::int64_t ch, bool reduce) {
  const int out_hw = reduce ? prev.hw / 2 : prev.hw;
  const int s = reduce ? 2 : 1;
  ValueId h1 = adjust(b, prev, ch, prev.hw);
  ValueId h0 = adjust(b, prev_prev, ch, prev.hw);

  // Five blocks in the published NASNet-A pattern (op pairs vary by block).
  ValueId b1 = b.add(sep_conv(b, h1, ch, 5, s), sep_conv(b, h0, ch, 3, s));
  ValueId b2 = b.add(sep_conv(b, h0, ch, 5, s), sep_conv(b, h0, ch, 3, s));
  ValueId b3 = b.add(b.avg_pool(h1, 3, s, 1), sep_conv(b, h0, ch, 7, s));
  ValueId b4 = b.add(b.avg_pool(h0, 3, s, 1), b.avg_pool(h0, 3, s, 1));
  ValueId b5 = b.add(sep_conv(b, h1, ch, 3, s), sep_conv(b, h1, ch, 7, s));

  ValueId out = b.concat({b1, b2, b3, b4, b5}, 1);
  const std::int64_t out_ch = b.channels(out);

  // Shape-computation chain (Shape -> Gather -> Concat -> Reshape) as the
  // export emits around pad/slice handling; folds to a constant reshape.
  out = b.foldable_reshape(out, {1, out_ch, out_hw, out_hw});
  b.declare_channels(out, out_ch);

  // Constant side-branch: a Constant scalar chain folded away by CP+DCE
  // (the export's pad-value computations look like this).
  ValueId base = b.scalar(0.01f);
  ValueId scaled = b.mul(base, b.scalar(2.0f));
  ValueId biasv = b.exp(scaled);
  out = b.add(out, biasv);

  return {out, out_hw};
}

}  // namespace

Graph nasnet() {
  NetBuilder b("nasnet");
  ValueId x = b.input("data", Shape{1, 3, 48, 48});
  x = b.bn(b.conv(x, 8, 3, 1, 1, 1, /*bias=*/false));

  CellState prev{x, 48};
  CellState prev_prev{x, 48};
  std::int64_t ch = 4;
  const int cells_per_stage = 5;
  for (int stage = 0; stage < 3; ++stage) {
    for (int i = 0; i < cells_per_stage; ++i) {
      CellState next = cell(b, prev, prev_prev, ch, /*reduce=*/false);
      prev_prev = prev;
      prev = next;
    }
    if (stage < 2) {
      ch *= 2;
      CellState next = cell(b, prev, prev_prev, ch, /*reduce=*/true);
      prev_prev = prev;
      prev = next;
    }
  }

  ValueId out = b.relu(prev.value);
  const std::int64_t feat = b.channels(out);
  out = b.global_avg_pool(out);
  out = b.flatten(out, 1);
  out = b.linear(out, feat, 100);
  out = b.softmax(out, -1);
  return b.finish({out});
}

}  // namespace ramiel::models
