// Yolo V5 (Ultralytics, small config), as deployed: the export fuses
// BatchNorm into the convolutions (conv+SiLU pairs), keeps the CSP
// backbone + SPPF + PAN neck, and unrolls per-anchor box-decode chains at
// the three detect heads. Those decode chains — shape-computation
// (Shape/Gather/Concat/Reshape) plus constant grids/anchors feeding
// elementwise math — are wide, parallel and largely constant-foldable,
// which is why Yolo is one of the paper's three CP+DCE winners (Table III,
// Fig. 6) and why its Table I parallelism sits above 1.
#include "models/net_builder.h"
#include "models/zoo.h"

namespace ramiel::models {
namespace {

/// Fused conv + SiLU (2 nodes).
ValueId cbs(NetBuilder& b, ValueId x, std::int64_t ch, int kernel,
            int stride = 1, int pad = -1) {
  return b.silu(b.conv(x, ch, kernel, stride, pad));
}

/// Bottleneck: 1x1 -> 3x3 with residual add (5 nodes).
ValueId bottleneck(NetBuilder& b, ValueId x, std::int64_t ch) {
  ValueId y = cbs(b, x, ch, 1);
  y = cbs(b, y, ch, 3);
  return b.add(x, y);
}

/// C3 / CSP block: split into two 1x1 paths, n bottlenecks on one, concat,
/// fuse (7 + 5n nodes).
ValueId c3(NetBuilder& b, ValueId x, std::int64_t ch, int n) {
  ValueId a = cbs(b, x, ch / 2, 1);
  ValueId c = cbs(b, x, ch / 2, 1);
  for (int i = 0; i < n; ++i) a = bottleneck(b, a, ch / 2);
  ValueId y = b.concat({a, c}, 1);
  return cbs(b, y, ch, 1);
}

/// Focus: space-to-depth via 4 pairs of strided slices + concat + conv.
ValueId focus(NetBuilder& b, ValueId x, std::int64_t ch) {
  std::vector<ValueId> parts;
  for (int dh = 0; dh < 2; ++dh) {
    for (int dw = 0; dw < 2; ++dw) {
      ValueId s = b.slice(x, 2, dh, 1 << 30, 2);
      s = b.slice(s, 3, dw, 1 << 30, 2);
      parts.push_back(s);
    }
  }
  ValueId y = b.concat(parts, 1);
  return cbs(b, y, ch, 3);
}

/// SPPF: conv + three chained 5x5 max-pools + concat + conv.
ValueId sppf(NetBuilder& b, ValueId x, std::int64_t ch) {
  ValueId c = cbs(b, x, ch / 2, 1);
  ValueId p1 = b.max_pool(c, 5, 1, 2);
  ValueId p2 = b.max_pool(p1, 5, 1, 2);
  ValueId p3 = b.max_pool(p2, 5, 1, 2);
  ValueId y = b.concat({c, p1, p2, p3}, 1);
  return cbs(b, y, ch, 1);
}

/// Detect head for one level: 1x1 prediction conv, foldable reshape to
/// [1, HW, na*no], sigmoid, then the three parallel decode chains (xy / wh /
/// confidence) the export unrolls, fed by constant grid / anchor / stride
/// tensors plus a foldable grid-offset side chain.
ValueId detect_head(NetBuilder& b, ValueId x, std::int64_t no) {
  const int na = 3;
  ValueId raw = b.conv(x, na * no, 1);
  ValueId flat = b.foldable_reshape(raw, {1, na * no, -1});
  ValueId t = b.transpose(flat, {0, 2, 1});  // [1, HW, na*no]
  ValueId y = b.sigmoid(t);

  // Grid offsets are themselves computed from constants in the export
  // (meshgrid -> stack -> add 0.5 -> scale); the whole side chain folds.
  ValueId grid = b.constant(Tensor::full(Shape{2}, 3.0f));
  grid = b.add(grid, b.scalar(0.5f));
  grid = b.mul(grid, b.scalar(1.0f));

  // xy chain: xy = ((s*2 - 0.5) + grid) * stride, then a clip-style min/max
  // pair the exporter lowers to arithmetic.
  ValueId xy = b.slice(y, 2, 0, 2);
  xy = b.mul(xy, b.scalar(2.0f));
  xy = b.sub(xy, b.scalar(0.5f));
  xy = b.add(xy, grid);
  xy = b.mul(xy, b.scalar(8.0f)); // stride
  xy = b.add(xy, b.scalar(0.0f)); // offset term kept by the exporter

  // wh chain: wh = (s*2)^2 * anchor_wh.
  ValueId wh = b.slice(y, 2, 2, 4);
  wh = b.mul(wh, b.scalar(2.0f));
  wh = b.mul(wh, wh);
  wh = b.mul(wh, b.constant(Tensor::full(Shape{2}, 4.0f)));  // anchors
  wh = b.mul(wh, b.scalar(1.0f)); // gain term

  ValueId conf = b.slice(y, 2, 4, no);
  return b.concat({xy, wh, conf}, 2);
}

}  // namespace

Graph yolo_v5() {
  NetBuilder b("yolo_v5");
  ValueId x = b.input("images", Shape{1, 3, 96, 96});

  // Backbone.
  x = focus(b, x, 16);
  x = cbs(b, x, 32, 3, 2, 1);
  ValueId c2 = c3(b, x, 32, 1);
  x = cbs(b, c2, 64, 3, 2, 1);
  ValueId c3v = c3(b, x, 64, 2);
  x = cbs(b, c3v, 128, 3, 2, 1);
  ValueId c4 = c3(b, x, 128, 3);
  x = cbs(b, c4, 128, 3, 2, 1);
  x = c3(b, x, 128, 1);
  ValueId c5 = sppf(b, x, 128);

  // PAN neck.
  ValueId p5 = cbs(b, c5, 64, 1);
  ValueId up1 = b.upsample(p5, 2);
  ValueId cat1 = b.concat({up1, c4}, 1);
  ValueId n1 = c3(b, cat1, 64, 1);

  ValueId p4 = cbs(b, n1, 32, 1);
  ValueId up2 = b.upsample(p4, 2);
  ValueId cat2 = b.concat({up2, c3v}, 1);
  ValueId n2 = c3(b, cat2, 32, 1);  // small-object level

  ValueId d1 = cbs(b, n2, 32, 3, 2, 1);
  ValueId cat3 = b.concat({d1, p4}, 1);
  ValueId n3 = c3(b, cat3, 64, 1);  // medium level

  ValueId d2 = cbs(b, n3, 64, 3, 2, 1);
  ValueId cat4 = b.concat({d2, p5}, 1);
  ValueId n4 = c3(b, cat4, 128, 1);  // large level

  const std::int64_t no = 11;  // 4 box + 1 obj + classes
  ValueId h1 = detect_head(b, n2, no);
  ValueId h2 = detect_head(b, n3, no);
  ValueId h3 = detect_head(b, n4, no);
  ValueId out = b.concat({h1, h2, h3}, 1);
  return b.finish({out});
}

}  // namespace ramiel::models
