// SqueezeNet 1.1 (Iandola et al.). 66 nodes: conv1 + 3 max-pools + 8 fire
// modules (squeeze 1x1 -> expand 1x1 || expand 3x3 -> concat) + conv10 head.
// The two expand branches give the shallow fork-join parallelism of the
// paper's Fig. 1; the potential-parallelism factor lands below 1 (Table I).
#include "models/net_builder.h"
#include "models/zoo.h"

namespace ramiel::models {
namespace {

/// Fire module: 7 nodes (squeeze conv+relu, two expand conv+relu, concat).
ValueId fire(NetBuilder& b, ValueId x, std::int64_t squeeze_ch,
             std::int64_t expand_ch) {
  ValueId s = b.relu(b.conv(x, squeeze_ch, 1));
  ValueId e1 = b.relu(b.conv(s, expand_ch, 1));
  ValueId e3 = b.relu(b.conv(s, expand_ch, 3));
  return b.concat({e1, e3}, 1);
}

}  // namespace

Graph squeezenet() {
  NetBuilder b("squeezenet");
  ValueId x = b.input("data", Shape{1, 3, 80, 80});

  x = b.relu(b.conv(x, 16, 3, /*stride=*/2, /*pad=*/1));
  x = b.max_pool(x, 3, 2);

  x = fire(b, x, 4, 16);
  x = fire(b, x, 4, 16);
  x = b.max_pool(x, 3, 2);

  x = fire(b, x, 8, 32);
  x = fire(b, x, 8, 32);
  x = b.max_pool(x, 3, 2);

  x = fire(b, x, 12, 48);
  x = fire(b, x, 12, 48);
  x = fire(b, x, 16, 64);
  x = fire(b, x, 16, 64);

  x = b.relu(b.conv(x, 100, 1));  // conv10: class map
  x = b.global_avg_pool(x);
  x = b.flatten(x, 1);
  x = b.softmax(x, -1);
  return b.finish({x});
}

}  // namespace ramiel::models
