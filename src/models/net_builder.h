// Fluent builder for constructing the evaluation models' dataflow graphs.
//
// The paper extracts its eight models from the PyTorch 2.0 repo, HuggingFace
// and the ONNX model zoo. Offline we reconstruct them programmatically with
// structure faithful to the originals (module composition, fan-out patterns,
// op mixes and Table I weighted costs); tensor extents are scaled down so the
// benchmark suite runs in seconds. Weight initializers are deterministic
// pseudo-random with fan-in scaling, so repeated builds are identical.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace ramiel {

/// Graph construction helper tracking per-value channel counts so conv /
/// linear layers can derive their weight shapes.
class NetBuilder {
 public:
  explicit NetBuilder(std::string model_name, std::uint64_t seed = 7);

  // -- graph I/O -------------------------------------------------------------

  /// Declares a graph input. For NCHW inputs the channel count is recorded.
  ValueId input(const std::string& name, Shape shape);

  /// Finalizes: marks outputs, runs shape inference, validates, returns graph.
  Graph finish(const std::vector<ValueId>& outputs);

  // -- convolutional blocks --------------------------------------------------

  /// Conv2d with fresh weight (+bias) initializers. pad == -1 means "same"
  /// (kernel/2). Updates the channel map.
  ValueId conv(ValueId x, std::int64_t out_ch, int kernel, int stride = 1,
               int pad = -1, int groups = 1, bool bias = true);

  /// Depthwise conv (groups == channels).
  ValueId depthwise_conv(ValueId x, int kernel, int stride = 1, int pad = -1);

  /// Inference-mode BatchNormalization with identity-like parameters.
  ValueId bn(ValueId x);

  ValueId max_pool(ValueId x, int kernel, int stride, int pad = 0);
  ValueId avg_pool(ValueId x, int kernel, int stride, int pad = 0);
  ValueId global_avg_pool(ValueId x);
  ValueId upsample(ValueId x, int scale);

  // -- activations / elementwise ---------------------------------------------

  ValueId relu(ValueId x);
  ValueId leaky_relu(ValueId x, double alpha = 0.1);
  ValueId sigmoid(ValueId x);
  ValueId silu(ValueId x);
  ValueId gelu(ValueId x);
  ValueId tanh(ValueId x);
  ValueId add(ValueId a, ValueId b);
  ValueId sub(ValueId a, ValueId b);
  ValueId mul(ValueId a, ValueId b);
  ValueId div(ValueId a, ValueId b);
  ValueId pow(ValueId a, ValueId b);
  ValueId exp(ValueId x);
  ValueId sqrt(ValueId x);

  // -- dense / transformer ----------------------------------------------------

  /// x [.., K] times a fresh [K, N] weight via MatMul (transformer style).
  ValueId matmul_w(ValueId x, std::int64_t in_features, std::int64_t out_features);

  /// Raw MatMul between two existing values.
  ValueId matmul(ValueId a, ValueId b);

  /// Gemm with fresh weight/bias (classifier-head style); input must be 2-D.
  ValueId linear(ValueId x, std::int64_t in_features, std::int64_t out_features);

  /// Bias add with a fresh [N] initializer broadcast over rows.
  ValueId bias_add(ValueId x, std::int64_t features);

  ValueId layer_norm(ValueId x, std::int64_t features);
  ValueId softmax(ValueId x, int axis = -1);
  ValueId embedding(ValueId ids, std::int64_t vocab, std::int64_t dim);

  // -- shape / data movement ---------------------------------------------------

  ValueId concat(const std::vector<ValueId>& xs, int axis);
  ValueId reshape(ValueId x, std::vector<std::int64_t> dims);       // static
  ValueId reshape_dyn(ValueId x, ValueId shape_tensor);             // dynamic
  ValueId transpose(ValueId x, std::vector<std::int64_t> perm);
  ValueId slice(ValueId x, int axis, std::int64_t begin, std::int64_t end,
                std::int64_t step = 1);
  ValueId flatten(ValueId x, int axis = 1);
  ValueId shape_of(ValueId x);
  ValueId gather(ValueId x, ValueId indices, int axis = 0);
  ValueId gather_const(ValueId x, std::vector<float> indices, int axis = 0);
  ValueId unsqueeze(ValueId x, std::vector<std::int64_t> axes);

  // -- constants ---------------------------------------------------------------

  /// Plain initializer value (no node).
  ValueId init(const std::string& name, Tensor data);

  /// Constant *node* whose output carries `data` (fodder for constant
  /// propagation — these show up as graph nodes before folding).
  ValueId constant(Tensor data);

  /// Scalar constant node.
  ValueId scalar(float v) { return constant(Tensor::scalar(v)); }

  // -- composite idioms used by several models ---------------------------------

  /// conv -> bn -> relu.
  ValueId conv_bn_relu(ValueId x, std::int64_t out_ch, int kernel,
                       int stride = 1, int pad = -1, int groups = 1);

  /// conv -> bn -> silu (Yolo V5's basic block).
  ValueId conv_bn_silu(ValueId x, std::int64_t out_ch, int kernel,
                       int stride = 1, int pad = -1);

  /// Attaches a data-dependent-looking but statically foldable shape-
  /// computation chain to `x` and reshapes `x` with it:
  ///   Shape(x) -> Gather(axes) -> Unsqueeze -> Concat(with consts) -> Reshape
  /// Real ONNX exports of BERT/Yolo/NASNet are full of exactly this pattern;
  /// constant propagation collapses the chain (Table III).
  ValueId foldable_reshape(ValueId x, const std::vector<std::int64_t>& dims);

  /// Channel count recorded for a value (NCHW models). -1 when unknown.
  std::int64_t channels(ValueId x) const;

  /// Declares the channel count of a value the builder could not track
  /// (e.g. the result of a dynamic reshape that preserves NCHW layout).
  void declare_channels(ValueId x, std::int64_t ch) { set_channels(x, ch); }

  /// Direct access for unusual constructions.
  Graph& graph() { return g_; }
  Rng& rng() { return rng_; }

 private:
  std::string fresh(const std::string& prefix);
  Tensor rand_tensor(Shape shape, float scale);
  void set_channels(ValueId v, std::int64_t ch);

  Graph g_;
  Rng rng_;
  std::unordered_map<ValueId, std::int64_t> channels_;
  std::unordered_map<std::string, int> name_counters_;
};

}  // namespace ramiel
