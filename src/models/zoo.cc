#include "models/zoo.h"

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel::models {

std::vector<std::string> model_names() {
  return {"squeezenet", "googlenet", "inception_v3", "inception_v4",
          "yolo_v5",    "retinanet", "bert",         "nasnet"};
}

Graph build(const std::string& name) {
  if (name == "squeezenet") return squeezenet();
  if (name == "googlenet") return googlenet();
  if (name == "inception_v3") return inception_v3();
  if (name == "inception_v4") return inception_v4();
  if (name == "yolo_v5") return yolo_v5();
  if (name == "retinanet") return retinanet();
  if (name == "bert") return bert();
  if (name == "nasnet") return nasnet();
  throw Error(str_cat("unknown model '", name, "'"));
}

}  // namespace ramiel::models
