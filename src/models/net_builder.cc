#include "models/net_builder.h"

#include <cmath>

#include "graph/shape_inference.h"
#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

NetBuilder::NetBuilder(std::string model_name, std::uint64_t seed)
    : g_(std::move(model_name)), rng_(seed) {}

std::string NetBuilder::fresh(const std::string& prefix) {
  const int n = name_counters_[prefix]++;
  return str_cat(prefix, "_", n);
}

Tensor NetBuilder::rand_tensor(Shape shape, float scale) {
  return Tensor::random(std::move(shape), rng_, -scale, scale);
}

void NetBuilder::set_channels(ValueId v, std::int64_t ch) { channels_[v] = ch; }

std::int64_t NetBuilder::channels(ValueId x) const {
  auto it = channels_.find(x);
  return it == channels_.end() ? -1 : it->second;
}

ValueId NetBuilder::input(const std::string& name, Shape shape) {
  ValueId v = g_.add_value(name, shape);
  g_.mark_input(v);
  if (shape.rank() == 4) set_channels(v, shape.dim(1));
  return v;
}

Graph NetBuilder::finish(const std::vector<ValueId>& outputs) {
  for (ValueId o : outputs) g_.mark_output(o);
  infer_shapes(g_);
  g_.validate();
  return std::move(g_);
}

ValueId NetBuilder::conv(ValueId x, std::int64_t out_ch, int kernel, int stride,
                         int pad, int groups, bool bias) {
  const std::int64_t in_ch = channels(x);
  RAMIEL_CHECK(in_ch > 0, "conv input has unknown channel count");
  RAMIEL_CHECK(in_ch % groups == 0 && out_ch % groups == 0,
               "conv groups must divide channels");
  if (pad < 0) pad = kernel / 2;
  const float scale =
      1.0f / std::sqrt(static_cast<float>(in_ch / groups * kernel * kernel));
  const std::string name = fresh("conv");
  ValueId w = init(name + "_w",
                   rand_tensor(Shape{out_ch, in_ch / groups, kernel, kernel},
                               scale));
  std::vector<ValueId> inputs{x, w};
  if (bias) {
    inputs.push_back(init(name + "_b", rand_tensor(Shape{out_ch}, scale)));
  }
  Attrs attrs;
  attrs.set("kernel", kernel)
      .set("stride", stride)
      .set("pad", pad)
      .set("groups", groups);
  NodeId n = g_.add_node(OpKind::kConv2d, name, inputs, 1, std::move(attrs));
  ValueId out = g_.node(n).outputs[0];
  set_channels(out, out_ch);
  return out;
}

ValueId NetBuilder::depthwise_conv(ValueId x, int kernel, int stride, int pad) {
  const std::int64_t ch = channels(x);
  RAMIEL_CHECK(ch > 0, "depthwise conv input has unknown channel count");
  return conv(x, ch, kernel, stride, pad, static_cast<int>(ch));
}

ValueId NetBuilder::bn(ValueId x) {
  const std::int64_t ch = channels(x);
  RAMIEL_CHECK(ch > 0, "bn input has unknown channel count");
  const std::string name = fresh("bn");
  ValueId scale = init(name + "_scale", Tensor::full(Shape{ch}, 1.0f));
  ValueId bias = init(name + "_bias", rand_tensor(Shape{ch}, 0.1f));
  ValueId mean = init(name + "_mean", rand_tensor(Shape{ch}, 0.1f));
  ValueId var = init(name + "_var", Tensor::full(Shape{ch}, 1.0f));
  NodeId n = g_.add_node(OpKind::kBatchNorm, name, {x, scale, bias, mean, var},
                         1, Attrs{}.set("epsilon", 1e-5));
  ValueId out = g_.node(n).outputs[0];
  set_channels(out, ch);
  return out;
}

namespace {
Attrs pool_attrs(int kernel, int stride, int pad) {
  Attrs a;
  a.set("kernel", kernel).set("stride", stride).set("pad", pad);
  return a;
}
}  // namespace

ValueId NetBuilder::max_pool(ValueId x, int kernel, int stride, int pad) {
  NodeId n = g_.add_node(OpKind::kMaxPool, fresh("maxpool"), {x}, 1,
                         pool_attrs(kernel, stride, pad));
  ValueId out = g_.node(n).outputs[0];
  set_channels(out, channels(x));
  return out;
}

ValueId NetBuilder::avg_pool(ValueId x, int kernel, int stride, int pad) {
  NodeId n = g_.add_node(OpKind::kAvgPool, fresh("avgpool"), {x}, 1,
                         pool_attrs(kernel, stride, pad));
  ValueId out = g_.node(n).outputs[0];
  set_channels(out, channels(x));
  return out;
}

ValueId NetBuilder::global_avg_pool(ValueId x) {
  NodeId n = g_.add_node(OpKind::kGlobalAvgPool, fresh("gap"), {x});
  ValueId out = g_.node(n).outputs[0];
  set_channels(out, channels(x));
  return out;
}

ValueId NetBuilder::upsample(ValueId x, int scale) {
  NodeId n = g_.add_node(OpKind::kResize, fresh("upsample"), {x}, 1,
                         Attrs{}.set("scale", scale));
  ValueId out = g_.node(n).outputs[0];
  set_channels(out, channels(x));
  return out;
}

// One-input ops that preserve channel counts.
#define RAMIEL_UNARY(method, kind, prefix)                    \
  ValueId NetBuilder::method(ValueId x) {                     \
    NodeId n = g_.add_node(OpKind::kind, fresh(prefix), {x}); \
    ValueId out = g_.node(n).outputs[0];                      \
    set_channels(out, channels(x));                           \
    return out;                                               \
  }

RAMIEL_UNARY(relu, kRelu, "relu")
RAMIEL_UNARY(sigmoid, kSigmoid, "sigmoid")
RAMIEL_UNARY(silu, kSilu, "silu")
RAMIEL_UNARY(gelu, kGelu, "gelu")
RAMIEL_UNARY(tanh, kTanh, "tanh")
RAMIEL_UNARY(exp, kExp, "exp")
RAMIEL_UNARY(sqrt, kSqrt, "sqrt")
#undef RAMIEL_UNARY

ValueId NetBuilder::leaky_relu(ValueId x, double alpha) {
  NodeId n = g_.add_node(OpKind::kLeakyRelu, fresh("lrelu"), {x}, 1,
                         Attrs{}.set("alpha", alpha));
  ValueId out = g_.node(n).outputs[0];
  set_channels(out, channels(x));
  return out;
}

// Two-input elementwise ops; channel count taken from the first operand.
#define RAMIEL_BINARY(method, kind, prefix)                          \
  ValueId NetBuilder::method(ValueId a, ValueId b) {                 \
    NodeId n = g_.add_node(OpKind::kind, fresh(prefix), {a, b});     \
    ValueId out = g_.node(n).outputs[0];                             \
    set_channels(out, channels(a) > 0 ? channels(a) : channels(b));  \
    return out;                                                      \
  }

RAMIEL_BINARY(add, kAdd, "add")
RAMIEL_BINARY(sub, kSub, "sub")
RAMIEL_BINARY(mul, kMul, "mul")
RAMIEL_BINARY(div, kDiv, "div")
RAMIEL_BINARY(pow, kPow, "pow")
#undef RAMIEL_BINARY

ValueId NetBuilder::matmul_w(ValueId x, std::int64_t in_features,
                             std::int64_t out_features) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(in_features));
  const std::string name = fresh("matmul");
  ValueId w = init(name + "_w", rand_tensor(Shape{in_features, out_features},
                                            scale));
  NodeId n = g_.add_node(OpKind::kMatMul, name, {x, w});
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::matmul(ValueId a, ValueId b) {
  NodeId n = g_.add_node(OpKind::kMatMul, fresh("matmul"), {a, b});
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::linear(ValueId x, std::int64_t in_features,
                           std::int64_t out_features) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(in_features));
  const std::string name = fresh("linear");
  ValueId w = init(name + "_w", rand_tensor(Shape{in_features, out_features},
                                            scale));
  ValueId b = init(name + "_b", rand_tensor(Shape{out_features}, scale));
  NodeId n = g_.add_node(OpKind::kGemm, name, {x, w, b});
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::bias_add(ValueId x, std::int64_t features) {
  const std::string name = fresh("bias");
  ValueId b = init(name + "_b", rand_tensor(Shape{features}, 0.1f));
  NodeId n = g_.add_node(OpKind::kAdd, name, {x, b});
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::layer_norm(ValueId x, std::int64_t features) {
  const std::string name = fresh("ln");
  ValueId scale = init(name + "_scale", Tensor::full(Shape{features}, 1.0f));
  ValueId bias = init(name + "_bias", Tensor::zeros(Shape{features}));
  NodeId n = g_.add_node(OpKind::kLayerNorm, name, {x, scale, bias}, 1,
                         Attrs{}.set("epsilon", 1e-5));
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::softmax(ValueId x, int axis) {
  NodeId n = g_.add_node(OpKind::kSoftmax, fresh("softmax"), {x}, 1,
                         Attrs{}.set("axis", axis));
  ValueId out = g_.node(n).outputs[0];
  set_channels(out, channels(x));
  return out;
}

ValueId NetBuilder::embedding(ValueId ids, std::int64_t vocab, std::int64_t dim) {
  const std::string name = fresh("embed");
  ValueId table = init(name + "_table",
                       rand_tensor(Shape{vocab, dim},
                                   1.0f / std::sqrt(static_cast<float>(dim))));
  NodeId n = g_.add_node(OpKind::kEmbedding, name, {table, ids});
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::concat(const std::vector<ValueId>& xs, int axis) {
  NodeId n = g_.add_node(OpKind::kConcat, fresh("concat"), xs, 1,
                         Attrs{}.set("axis", axis));
  ValueId out = g_.node(n).outputs[0];
  if (axis == 1) {
    std::int64_t total = 0;
    for (ValueId x : xs) {
      const std::int64_t c = channels(x);
      if (c < 0) {
        total = -1;
        break;
      }
      total += c;
    }
    set_channels(out, total);
  } else {
    set_channels(out, channels(xs[0]));
  }
  return out;
}

ValueId NetBuilder::reshape(ValueId x, std::vector<std::int64_t> dims) {
  NodeId n = g_.add_node(OpKind::kReshape, fresh("reshape"), {x}, 1,
                         Attrs{}.set("shape", std::move(dims)));
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::reshape_dyn(ValueId x, ValueId shape_tensor) {
  NodeId n = g_.add_node(OpKind::kReshape, fresh("reshape"), {x, shape_tensor});
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::transpose(ValueId x, std::vector<std::int64_t> perm) {
  NodeId n = g_.add_node(OpKind::kTranspose, fresh("transpose"), {x}, 1,
                         Attrs{}.set("perm", std::move(perm)));
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::slice(ValueId x, int axis, std::int64_t begin,
                          std::int64_t end, std::int64_t step) {
  NodeId n = g_.add_node(OpKind::kSlice, fresh("slice"), {x}, 1,
                         Attrs{}
                             .set("axis", axis)
                             .set("begin", begin)
                             .set("end", end)
                             .set("step", step));
  ValueId out = g_.node(n).outputs[0];
  if (axis != 1) set_channels(out, channels(x));
  return out;
}

ValueId NetBuilder::flatten(ValueId x, int axis) {
  NodeId n = g_.add_node(OpKind::kFlatten, fresh("flatten"), {x}, 1,
                         Attrs{}.set("axis", axis));
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::shape_of(ValueId x) {
  NodeId n = g_.add_node(OpKind::kShape, fresh("shape"), {x});
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::gather(ValueId x, ValueId indices, int axis) {
  NodeId n = g_.add_node(OpKind::kGather, fresh("gather"), {x, indices}, 1,
                         Attrs{}.set("axis", axis));
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::gather_const(ValueId x, std::vector<float> indices,
                                 int axis) {
  ValueId idx = constant(Tensor::vec(std::move(indices)));
  return gather(x, idx, axis);
}

ValueId NetBuilder::unsqueeze(ValueId x, std::vector<std::int64_t> axes) {
  NodeId n = g_.add_node(OpKind::kUnsqueeze, fresh("unsqueeze"), {x}, 1,
                         Attrs{}.set("axes", std::move(axes)));
  return g_.node(n).outputs[0];
}

ValueId NetBuilder::init(const std::string& name, Tensor data) {
  return g_.add_initializer(name, std::move(data));
}

ValueId NetBuilder::constant(Tensor data) {
  NodeId n = g_.add_node(OpKind::kConstant, fresh("const"), {});
  ValueId out = g_.node(n).outputs[0];
  g_.value(out).shape = data.shape();
  g_.value(out).const_data = std::move(data);
  return out;
}

ValueId NetBuilder::conv_bn_relu(ValueId x, std::int64_t out_ch, int kernel,
                                 int stride, int pad, int groups) {
  return relu(bn(conv(x, out_ch, kernel, stride, pad, groups, /*bias=*/false)));
}

ValueId NetBuilder::conv_bn_silu(ValueId x, std::int64_t out_ch, int kernel,
                                 int stride, int pad) {
  return silu(bn(conv(x, out_ch, kernel, stride, pad, 1, /*bias=*/false)));
}

ValueId NetBuilder::foldable_reshape(ValueId x,
                                     const std::vector<std::int64_t>& dims) {
  // Shape(x) -> Gather([0]) -> Unsqueeze -> Concat with constant tail ->
  // Reshape(x, ·). Everything between Shape and Reshape folds to a constant
  // once shapes are static.
  ValueId shp = shape_of(x);
  ValueId batch = gather_const(shp, {0.0f}, 0);  // 1-D, one element
  std::vector<float> tail;
  for (std::size_t i = 1; i < dims.size(); ++i) {
    tail.push_back(static_cast<float>(dims[i]));
  }
  ValueId rest = constant(Tensor::vec(std::move(tail)));
  ValueId target = concat({batch, rest}, 0);
  return reshape_dyn(x, target);
}

}  // namespace ramiel
