// Inception V3 and V4 (Szegedy et al.). Both are stacks of inception-A
// (1x1 | 1x1->5x5 | 1x1->3x3->3x3 | pool->1x1) and inception-B (factorized
// 7x7) modules with reduction modules between stages. Convs are
// conv+bn+relu triples as in the ONNX exports. V4 is the deeper stack.
// Some branches (pool->1x1) have very low computational intensity — the
// paper's Fig. 2 observation motivating cloning and hyperclustering.
#include "models/net_builder.h"
#include "models/zoo.h"

namespace ramiel::models {
namespace {

/// Inception-A: 4 branches, 23 nodes.
ValueId inception_a(NetBuilder& b, ValueId x, std::int64_t pool_ch) {
  ValueId br1 = b.conv_bn_relu(x, 16, 1);
  ValueId br2 = b.conv_bn_relu(b.conv_bn_relu(x, 12, 1), 16, 5);
  ValueId br3 = b.conv_bn_relu(
      b.conv_bn_relu(b.conv_bn_relu(x, 16, 1), 24, 3), 24, 3);
  ValueId br4 = b.conv_bn_relu(b.avg_pool(x, 3, 1, 1), pool_ch, 1);
  return b.concat({br1, br2, br3, br4}, 1);
}

/// Reduction-A: 3 branches, 14 nodes; halves spatial dims.
ValueId reduction_a(NetBuilder& b, ValueId x) {
  ValueId br1 = b.conv_bn_relu(x, 48, 3, /*stride=*/2, /*pad=*/1);
  ValueId br2 = b.conv_bn_relu(
      b.conv_bn_relu(b.conv_bn_relu(x, 16, 1), 24, 3),
      32, 3, /*stride=*/2, /*pad=*/1);
  ValueId br3 = b.max_pool(x, 3, 2, 1);
  return b.concat({br1, br2, br3}, 1);
}

/// Inception-B: factorized 7x7 branches (we model the 1x7/7x1 pairs with
/// 7-wide square kernels at matching cost class), 4 branches, 32 nodes.
ValueId inception_b(NetBuilder& b, ValueId x, std::int64_t ch) {
  ValueId br1 = b.conv_bn_relu(x, 24, 1);
  ValueId br2 = b.conv_bn_relu(b.conv_bn_relu(b.conv_bn_relu(x, ch, 1), ch, 7),
                               24, 7);
  ValueId br3 = b.conv_bn_relu(
      b.conv_bn_relu(
          b.conv_bn_relu(b.conv_bn_relu(b.conv_bn_relu(x, ch, 1), ch, 7), ch, 7),
          ch, 7),
      24, 7);
  ValueId br4 = b.conv_bn_relu(b.avg_pool(x, 3, 1, 1), 24, 1);
  return b.concat({br1, br2, br3, br4}, 1);
}

/// Shared stem: 6 conv triples + 2 pools = 20 nodes.
ValueId stem(NetBuilder& b, ValueId x) {
  x = b.conv_bn_relu(x, 8, 3, /*stride=*/2, /*pad=*/1);
  x = b.conv_bn_relu(x, 8, 3, 1, 0);
  x = b.conv_bn_relu(x, 16, 3, 1, 1);
  x = b.max_pool(x, 3, 2, 1);
  x = b.conv_bn_relu(x, 20, 1);
  x = b.conv_bn_relu(x, 48, 3, 1, 0);
  x = b.max_pool(x, 3, 2, 1);
  return x;
}

Graph inception(const std::string& name, int num_a, int num_b,
                std::int64_t b_ch, std::int64_t hw) {
  NetBuilder b(name);
  ValueId x = b.input("data", Shape(std::vector<std::int64_t>{1, 3, hw, hw}));
  x = stem(b, x);
  for (int i = 0; i < num_a; ++i) {
    x = inception_a(b, x, i == 0 ? 8 : 16);
  }
  x = reduction_a(b, x);
  for (int i = 0; i < num_b; ++i) {
    x = inception_b(b, x, b_ch);
  }
  const std::int64_t feat = b.channels(x);
  x = b.global_avg_pool(x);
  x = b.flatten(x, 1);
  x = b.linear(x, feat, 100);
  x = b.softmax(x, -1);
  return b.finish({x});
}

}  // namespace

Graph inception_v3() { return inception("inception_v3", 3, 4, 16, 96); }

Graph inception_v4() { return inception("inception_v4", 4, 7, 16, 128); }

}  // namespace ramiel::models
