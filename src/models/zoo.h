// The evaluation model zoo: programmatic builders for the eight models of
// the paper's Table I. Structures follow the published architectures
// (module composition, fan-out, op mix); tensor extents are scaled down so
// the full benchmark suite runs in seconds on a laptop-class CPU. See
// DESIGN.md ("Substitutions") for why this preserves the experiments.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ramiel::models {

Graph squeezenet();    // 8 fire modules; fork-join, limited parallelism
Graph googlenet();     // 9 inception modules, 4-way fan-out each
Graph inception_v3();  // inception-A/B + reduction modules
Graph inception_v4();  // deeper inception stack
Graph yolo_v5();       // CSP backbone + PAN neck + detect heads (foldable)
Graph retinanet();     // ResNet backbone + FPN + class/box subnets
Graph bert();          // 12-layer transformer encoder, decomposed LN/GELU
Graph nasnet();        // NASNet-A style cells, wide fan-out, prunable paths

/// Names accepted by build(): squeezenet, googlenet, inception_v3,
/// inception_v4, yolo_v5, retinanet, bert, nasnet.
std::vector<std::string> model_names();

/// Builds a model by name. Throws Error for unknown names.
Graph build(const std::string& name);

}  // namespace ramiel::models
