// BERT-base encoder (Devlin et al.), 12 layers. Mirrors the HuggingFace
// ONNX export: LayerNorm and GELU appear *decomposed* into their primitive
// arithmetic (ReduceMean/Sub/Pow/Sqrt/Div/Mul/Add and Div/Erf/Add/Mul/Mul),
// and every attention reshape goes through a Shape->Gather->Concat->Reshape
// chain. Those chains plus the scalar Constant nodes are what constant
// propagation folds in Table III. The multi-headed-attention fan-out
// (Q | K | V) is the repeated structure of the paper's Fig. 3.
#include <cmath>

#include "models/net_builder.h"
#include "models/zoo.h"

namespace ramiel::models {
namespace {

struct BertCfg {
  std::int64_t seq = 96;
  std::int64_t hidden = 128;
  std::int64_t heads = 4;
  std::int64_t ff = 512;
  std::int64_t vocab = 1000;
  int layers = 12;
};

/// Decomposed LayerNorm as exported by ONNX (9 graph nodes; the scalar
/// operands are initializers, matching how the exporter lifts them).
ValueId layer_norm_decomposed(NetBuilder& b, ValueId x, std::int64_t features) {
  ValueId mean = b.graph()
                     .node(b.graph().add_node(OpKind::kReduceMean, "", {x}, 1,
                                              Attrs{}.set(
                                                  "axes",
                                                  std::vector<std::int64_t>{-1})))
                     .outputs[0];
  ValueId centered = b.sub(x, mean);
  ValueId two = b.init(b.graph().name() + "_ln_two_" +
                           std::to_string(b.graph().nodes().size()),
                       Tensor::scalar(2.0f));
  ValueId sq = b.pow(centered, two);
  ValueId var = b.graph()
                    .node(b.graph().add_node(OpKind::kReduceMean, "", {sq}, 1,
                                             Attrs{}.set(
                                                 "axes",
                                                 std::vector<std::int64_t>{-1})))
                    .outputs[0];
  ValueId eps = b.init(b.graph().name() + "_ln_eps_" +
                           std::to_string(b.graph().nodes().size()),
                       Tensor::scalar(1e-5f));
  ValueId std_dev = b.sqrt(b.add(var, eps));
  ValueId normed = b.div(centered, std_dev);
  ValueId scale = b.init(b.graph().name() + "_ln_scale_" +
                             std::to_string(b.graph().nodes().size()),
                         Tensor::full(Shape{features}, 1.0f));
  ValueId bias = b.init(b.graph().name() + "_ln_bias_" +
                            std::to_string(b.graph().nodes().size()),
                        Tensor::zeros(Shape{features}));
  return b.add(b.mul(normed, scale), bias);
}

/// Decomposed erf-GELU (5 graph nodes; scalar operands are initializers).
ValueId gelu_decomposed(NetBuilder& b, ValueId x) {
  const std::string tag = std::to_string(b.graph().nodes().size());
  ValueId sqrt2 =
      b.init(b.graph().name() + "_gelu_sqrt2_" + tag, Tensor::scalar(1.41421356f));
  ValueId scaled = b.div(x, sqrt2);
  NodeId erf_node = b.graph().add_node(OpKind::kErf, "", {scaled});
  ValueId erf = b.graph().node(erf_node).outputs[0];
  ValueId one = b.init(b.graph().name() + "_gelu_one_" + tag, Tensor::scalar(1.0f));
  ValueId shifted = b.add(erf, one);
  ValueId prod = b.mul(x, shifted);
  ValueId half = b.init(b.graph().name() + "_gelu_half_" + tag, Tensor::scalar(0.5f));
  return b.mul(prod, half);
}

/// Projects hidden states into per-head layout:
/// matmul + bias + foldable reshape [1,S,h,d] + transpose to [1,h,S,d].
ValueId qkv_proj(NetBuilder& b, ValueId x, const BertCfg& c) {
  ValueId y = b.matmul_w(x, c.hidden, c.hidden);
  y = b.bias_add(y, c.hidden);
  y = b.foldable_reshape(y, {1, c.seq, c.heads, c.hidden / c.heads});
  return b.transpose(y, {0, 2, 1, 3});
}

ValueId encoder_layer(NetBuilder& b, ValueId x, const BertCfg& c) {
  // Multi-headed attention.
  ValueId q = qkv_proj(b, x, c);
  ValueId k = qkv_proj(b, x, c);
  ValueId v = qkv_proj(b, x, c);
  ValueId kt = b.transpose(k, {0, 1, 3, 2});
  ValueId scores = b.matmul(q, kt);
  ValueId scale = b.init(
      b.graph().name() + "_attn_scale_" +
          std::to_string(b.graph().nodes().size()),
      Tensor::scalar(std::sqrt(static_cast<float>(c.hidden / c.heads))));
  scores = b.div(scores, scale);
  ValueId probs = b.softmax(scores, -1);
  ValueId ctx = b.matmul(probs, v);
  ctx = b.transpose(ctx, {0, 2, 1, 3});
  ctx = b.foldable_reshape(ctx, {1, c.seq, c.hidden});
  ValueId attn = b.bias_add(b.matmul_w(ctx, c.hidden, c.hidden), c.hidden);
  x = layer_norm_decomposed(b, b.add(x, attn), c.hidden);

  // Feed-forward.
  ValueId h = b.bias_add(b.matmul_w(x, c.hidden, c.ff), c.ff);
  h = gelu_decomposed(b, h);
  h = b.bias_add(b.matmul_w(h, c.ff, c.hidden), c.hidden);
  return layer_norm_decomposed(b, b.add(x, h), c.hidden);
}

}  // namespace

Graph bert() {
  BertCfg c;
  NetBuilder b("bert");
  ValueId ids = b.input("input_ids", Shape{1, c.seq});
  ValueId type_ids = b.input("token_type_ids", Shape{1, c.seq});

  ValueId word = b.embedding(ids, c.vocab, c.hidden);
  ValueId type = b.embedding(type_ids, 2, c.hidden);
  ValueId pos = b.init("position_embeddings",
                       Tensor::random(Shape{1, c.seq, c.hidden}, b.rng(),
                                      -0.1f, 0.1f));
  ValueId x = b.add(b.add(word, type), pos);
  x = layer_norm_decomposed(b, x, c.hidden);

  for (int i = 0; i < c.layers; ++i) x = encoder_layer(b, x, c);

  // Pooler: first token -> dense -> tanh.
  ValueId first = b.slice(x, 1, 0, 1);
  ValueId pooled = b.reshape(first, {1, c.hidden});
  pooled = b.tanh(b.linear(pooled, c.hidden, c.hidden));
  return b.finish({x, pooled});
}

}  // namespace ramiel::models
