// GoogLeNet / Inception v1 (Szegedy et al.). Nine 4-branch inception modules
// (1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1) with stage pools between them.
// The 4-way fan-out per module is the source of its 1.4x potential
// parallelism in Table I.
#include "models/net_builder.h"
#include "models/zoo.h"

namespace ramiel::models {
namespace {

struct InceptionSpec {
  std::int64_t b1;        // 1x1 branch
  std::int64_t b2a, b2b;  // 1x1 -> 3x3 branch
  std::int64_t b3a, b3b;  // 1x1 -> 5x5 branch
  std::int64_t b4;        // pool -> 1x1 branch
};

/// Classic inception module: 14 nodes.
ValueId inception(NetBuilder& b, ValueId x, const InceptionSpec& s) {
  ValueId br1 = b.relu(b.conv(x, s.b1, 1));
  ValueId br2 = b.relu(b.conv(b.relu(b.conv(x, s.b2a, 1)), s.b2b, 3));
  ValueId br3 = b.relu(b.conv(b.relu(b.conv(x, s.b3a, 1)), s.b3b, 5));
  ValueId br4 = b.relu(b.conv(b.max_pool(x, 3, 1, 1), s.b4, 1));
  return b.concat({br1, br2, br3, br4}, 1);
}

}  // namespace

Graph googlenet() {
  NetBuilder b("googlenet");
  ValueId x = b.input("data", Shape{1, 3, 64, 64});

  // Stem (the original uses LRN; we keep the BN stand-ins the ONNX zoo
  // export carries at the same positions).
  x = b.relu(b.conv(x, 16, 7, /*stride=*/2, /*pad=*/3));
  x = b.max_pool(x, 3, 2, 1);
  x = b.bn(x);
  x = b.relu(b.conv(x, 16, 1));
  x = b.relu(b.conv(x, 48, 3, 1, 1));
  x = b.bn(x);
  x = b.max_pool(x, 3, 2, 1);

  // Stage 3 (channel specs are the published ones scaled by 1/4).
  x = inception(b, x, {16, 24, 32, 4, 8, 8});    // 3a
  x = inception(b, x, {32, 32, 48, 8, 24, 16});  // 3b
  x = b.max_pool(x, 3, 2, 1);

  // Stage 4
  x = inception(b, x, {48, 24, 52, 4, 12, 16});  // 4a
  x = inception(b, x, {40, 28, 56, 6, 16, 16});  // 4b
  x = inception(b, x, {32, 32, 64, 6, 16, 16});  // 4c
  x = inception(b, x, {28, 36, 72, 8, 16, 16});  // 4d
  x = inception(b, x, {64, 40, 80, 8, 32, 32});  // 4e
  x = b.max_pool(x, 3, 2, 1);

  // Stage 5
  x = inception(b, x, {64, 40, 80, 8, 32, 32});    // 5a
  x = inception(b, x, {96, 48, 96, 12, 32, 32});   // 5b

  const std::int64_t feat = b.channels(x);  // 256 after 5b's concat
  x = b.global_avg_pool(x);
  x = b.flatten(x, 1);
  x = b.linear(x, feat, 100);
  x = b.softmax(x, -1);
  return b.finish({x});
}

}  // namespace ramiel::models
